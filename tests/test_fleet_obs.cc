/**
 * @file
 * Tests for the live sweep-fleet observability plane: the status.json
 * schema and its atomic replacement (obs/status.hh), the Prometheus
 * text exposition, cross-process trace stitching (obs/trace_stitch.hh),
 * and the report layer's per-shard rendering.
 *
 * Everything here is pure file/string plumbing — none of it depends on
 * the runtime obs switch, so the tests run identically under
 * CAPART_OBS=OFF (the supervisor's *write sites* are what the gate
 * compiles out; the end-to-end gating is covered by test_shard.cc).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "obs/metrics.hh"
#include "obs/run_ledger.hh"
#include "obs/status.hh"
#include "obs/trace_stitch.hh"
#include "report/report.hh"

namespace capart
{
namespace
{

std::string
freshDir(const char *name)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

obs::SweepStatus
sampleStatus()
{
    obs::SweepStatus s;
    s.bench = "fig13_dynamic";
    s.run = "fig13_dynamic-12345-1700000000000";
    s.state = "running";
    s.seed = 0xDEADBEEFCAFEull;
    s.shards = 2;
    s.pointsTotal = 10;
    s.pointsDone = 6;
    s.pointsFromCache = 2;
    s.pointsQuarantined = 1;
    s.retries = 3;
    s.startTsMs = 1.7e12;
    s.updatedTsMs = 1.7e12 + 60000.0;
    s.throughputPointsPerMin = 6.0;
    s.etaS = 40.0;
    s.cacheHitRate = 2.0 / 6.0;
    obs::ShardStatus a;
    a.shard = 0;
    a.pid = 4242;
    a.state = "running";
    a.pointsAssigned = 5;
    a.pointsDone = 3;
    a.pointsFromCache = 1;
    a.retries = 2;
    a.spawns = 3;
    a.timeoutKills = 1;
    a.crashes = 1;
    a.lastBeatAgeS = 0.25;
    a.currentSpec = "solo app=ferret threads=4 ways=12";
    a.currentSpecHash = 0x0123456789ABCDEFull;
    a.currentElapsedS = 1.5;
    obs::ShardStatus b;
    b.shard = 1;
    b.state = "settled";
    b.pointsAssigned = 5;
    b.pointsDone = 3;
    b.pointsFromCache = 1;
    b.pointsQuarantined = 1;
    b.retries = 1;
    b.spawns = 1;
    b.lastBeatAgeS = -1.0;
    s.shardStates = {a, b};
    return s;
}

// ------------------------------------------------ status schema --

TEST(SweepStatus, EncodeDecodeRoundTripsEveryField)
{
    const obs::SweepStatus s = sampleStatus();
    obs::SweepStatus r;
    ASSERT_TRUE(obs::decodeStatus(obs::encodeStatus(s), &r));

    EXPECT_EQ(r.bench, s.bench);
    EXPECT_EQ(r.run, s.run);
    EXPECT_EQ(r.state, s.state);
    EXPECT_EQ(r.seed, s.seed);
    EXPECT_EQ(r.shards, s.shards);
    EXPECT_EQ(r.pointsTotal, s.pointsTotal);
    EXPECT_EQ(r.pointsDone, s.pointsDone);
    EXPECT_EQ(r.pointsFromCache, s.pointsFromCache);
    EXPECT_EQ(r.pointsQuarantined, s.pointsQuarantined);
    EXPECT_EQ(r.retries, s.retries);
    EXPECT_EQ(r.startTsMs, s.startTsMs);
    EXPECT_EQ(r.updatedTsMs, s.updatedTsMs);
    EXPECT_EQ(r.throughputPointsPerMin, s.throughputPointsPerMin);
    EXPECT_EQ(r.etaS, s.etaS);
    EXPECT_EQ(r.cacheHitRate, s.cacheHitRate);
    ASSERT_EQ(r.shardStates.size(), 2u);
    const obs::ShardStatus &a = r.shardStates[0];
    EXPECT_EQ(a.shard, 0u);
    EXPECT_EQ(a.pid, 4242);
    EXPECT_EQ(a.state, "running");
    EXPECT_EQ(a.pointsAssigned, 5u);
    EXPECT_EQ(a.pointsDone, 3u);
    EXPECT_EQ(a.pointsFromCache, 1u);
    EXPECT_EQ(a.retries, 2u);
    EXPECT_EQ(a.spawns, 3u);
    EXPECT_EQ(a.timeoutKills, 1u);
    EXPECT_EQ(a.crashes, 1u);
    EXPECT_EQ(a.lastBeatAgeS, 0.25);
    EXPECT_EQ(a.currentSpec, "solo app=ferret threads=4 ways=12");
    EXPECT_EQ(a.currentSpecHash, 0x0123456789ABCDEFull);
    EXPECT_EQ(a.currentElapsedS, 1.5);
    const obs::ShardStatus &b = r.shardStates[1];
    EXPECT_EQ(b.state, "settled");
    EXPECT_EQ(b.pid, -1);
    EXPECT_EQ(b.pointsQuarantined, 1u);
    EXPECT_EQ(b.lastBeatAgeS, -1.0);
    EXPECT_EQ(b.currentSpec, "");
}

TEST(SweepStatus, SeedSurvivesAbove2To53)
{
    // Seeds are 64-bit; JSON numbers are doubles, exact only below
    // 2^53 — the codec must carry seeds as decimal strings.
    obs::SweepStatus s = sampleStatus();
    s.seed = 0xFFFFFFFFFFFFFFFFull;
    obs::SweepStatus r;
    ASSERT_TRUE(obs::decodeStatus(obs::encodeStatus(s), &r));
    EXPECT_EQ(r.seed, 0xFFFFFFFFFFFFFFFFull);
    ASSERT_FALSE(r.shardStates.empty());
    EXPECT_EQ(r.shardStates[0].currentSpecHash, 0x0123456789ABCDEFull);
}

TEST(SweepStatus, DecodeRejectsGarbageAndSchemaMismatch)
{
    obs::SweepStatus out;
    EXPECT_FALSE(obs::decodeStatus("", &out));
    EXPECT_FALSE(obs::decodeStatus("{\"torn", &out));
    EXPECT_FALSE(obs::decodeStatus("[1,2,3]", &out));

    // A future schema version must be rejected, not misread.
    Json doc = obs::statusToJson(sampleStatus());
    doc.set("version", Json(99.0));
    EXPECT_FALSE(obs::decodeStatus(doc.dump(), &out));
}

// ------------------------------------------- atomic replacement --

TEST(SweepStatus, AtomicReplaceNeverShowsATornDocument)
{
    const std::string dir = freshDir("capart_status_atomic");
    const std::string path = dir + "/status.json";

    // Two same-length complete documents; a reader must only ever see
    // one of them whole, never a mix or a prefix.
    const std::string a(8192, 'a');
    const std::string b(8192, 'b');
    ASSERT_TRUE(obs::writeFileAtomic(path, a));

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        while (!stop.load()) {
            const std::string got = slurp(path);
            if (got != a && got != b)
                torn.fetch_add(1);
        }
    });
    for (int i = 0; i < 400; ++i)
        ASSERT_TRUE(obs::writeFileAtomic(path, (i % 2) ? a : b));
    stop.store(true);
    reader.join();
    EXPECT_EQ(torn.load(), 0);
    std::filesystem::remove_all(dir);
}

TEST(SweepStatus, ConcurrentStatusReaderAlwaysDecodes)
{
    const std::string dir = freshDir("capart_status_reader");
    const std::string path = dir + "/status.json";
    obs::SweepStatus s = sampleStatus();
    ASSERT_TRUE(obs::writeStatusFile(path, s));

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::thread reader([&] {
        while (!stop.load()) {
            obs::SweepStatus r;
            if (!obs::readStatusFile(path, &r))
                failures.fetch_add(1);
            else if (r.bench != "fig13_dynamic")
                failures.fetch_add(1);
        }
    });
    for (int i = 0; i < 300; ++i) {
        s.pointsDone = static_cast<std::uint64_t>(i);
        ASSERT_TRUE(obs::writeStatusFile(path, s));
    }
    stop.store(true);
    reader.join();
    EXPECT_EQ(failures.load(), 0);
    std::filesystem::remove_all(dir);
}

// --------------------------------------------- prom exposition --

TEST(PromExposition, SanitizesToExpositionCharset)
{
    EXPECT_EQ(obs::promSanitize("exec.shard_spawns"),
              "exec_shard_spawns");
    EXPECT_EQ(obs::promSanitize("a-b.c:d"), "a_b_c:d");
    EXPECT_EQ(obs::promSanitize("9lives"), "_9lives");
}

TEST(PromExposition, RegistryAndStatusRenderAsText)
{
    obs::MetricsRegistry reg;
    reg.counter("exec.points").inc(7);
    reg.gauge("sim.temp").set(1.5);
    obs::Histogram &h = reg.histogram("exec.point_ms");
    for (int i = 0; i < 100; ++i)
        h.record(static_cast<std::uint64_t>(i));

    const obs::SweepStatus s = sampleStatus();
    std::ostringstream os;
    obs::writePromText(os, reg, &s);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE capart_exec_points_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("capart_exec_points_total 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE capart_sim_temp gauge"),
              std::string::npos);
    EXPECT_NE(text.find("capart_sim_temp 1.5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE capart_exec_point_ms summary"),
              std::string::npos);
    EXPECT_NE(text.find("capart_exec_point_ms{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("capart_exec_point_ms_count 100"),
              std::string::npos);
    EXPECT_NE(text.find("capart_sweep_points_done 6"), std::string::npos);
    EXPECT_NE(text.find("capart_sweep_points_total 10"),
              std::string::npos);
    EXPECT_NE(text.find("capart_shard_retries_total{shard=\"0\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("capart_shard_up{shard=\"1\"} 0"),
              std::string::npos);

    // Every non-comment line is `name[{labels}] value`.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_NE(sp, 0u) << line;
    }
}

TEST(PromExposition, WorkerCountersFoldInWithShardLabels)
{
    const std::string dir = freshDir("capart_prom_workers");
    {
        std::ofstream os(dir + "/m.shard-2");
        os << "{\"counters\":{\"sim.quanta\":42,\"exec.points\":3},"
              "\"gauges\":{},\"histograms\":{}}";
    }
    std::ostringstream os;
    EXPECT_TRUE(obs::appendWorkerCounters(os, dir + "/m.shard-2", 2));
    const std::string text = os.str();
    EXPECT_NE(text.find("capart_worker_sim_quanta{shard=\"2\"} 42"),
              std::string::npos);
    EXPECT_NE(text.find("capart_worker_exec_points{shard=\"2\"} 3"),
              std::string::npos);

    // A worker that never exported (killed before atexit) is skipped
    // silently, never an error.
    std::ostringstream os2;
    EXPECT_FALSE(
        obs::appendWorkerCounters(os2, dir + "/m.shard-9", 9));
    EXPECT_TRUE(os2.str().empty());

    obs::MetricsRegistry reg;
    const obs::SweepStatus s = sampleStatus();
    ASSERT_TRUE(obs::writePromFile(
        dir + "/metrics.prom", reg, &s,
        {{dir + "/m.shard-2", 2}, {dir + "/m.shard-9", 9}}));
    const std::string file = slurp(dir + "/metrics.prom");
    EXPECT_NE(file.find("capart_worker_sim_quanta{shard=\"2\"} 42"),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------ trace stitch --

/** A minimal but complete Tracer-shaped trace file. */
void
writeTraceFile(const std::string &path, double base_ts,
               std::uint64_t dropped)
{
    std::ofstream os(path);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 1, \"args\": {\"name\": \"simulated time (us)\"}},\n";
    os << "{\"name\": \"quantum\", \"cat\": \"sim\", \"ph\": \"X\", "
          "\"ts\": "
       << base_ts + 5
       << ", \"dur\": 2, \"pid\": 1, \"tid\": 1, \"args\": {}},\n";
    os << "{\"name\": \"point\", \"cat\": \"exec\", \"ph\": \"i\", "
          "\"ts\": "
       << base_ts << ", \"s\": \"t\", \"pid\": 2, \"tid\": 1, "
          "\"args\": {}}\n";
    os << "], \"metadata\": {\"dropped_events\": " << dropped
       << ", \"retained_events\": 2}}\n";
}

TEST(TraceStitch, RemapsPidsSortsAndLabelsSources)
{
    const std::string dir = freshDir("capart_stitch_basic");
    writeTraceFile(dir + "/sup.trace", 100.0, 1);
    writeTraceFile(dir + "/w0.trace", 50.0, 2);

    std::ostringstream os;
    obs::StitchStats stats;
    ASSERT_TRUE(obs::stitchTraces({{dir + "/sup.trace", "supervisor"},
                                   {dir + "/w0.trace", "shard 0"}},
                                  os, &stats));
    EXPECT_EQ(stats.sourcesRead, 2u);
    EXPECT_EQ(stats.sourcesMissing, 0u);
    EXPECT_EQ(stats.sourcesMalformed, 0u);
    EXPECT_EQ(stats.events, 4u);
    EXPECT_EQ(stats.droppedEvents, 3u);

    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc && doc->isObj()) << os.str();
    const Json &events = doc->at("traceEvents");
    ASSERT_TRUE(events.isArr());

    // Sources keep both clock-domain tracks under globally unique
    // pids: source 0 → {1,2}, source 1 → {3,4}; each pid carries a
    // labelled process_name and a process_sort_index.
    std::set<double> pids;
    std::set<double> named;
    std::set<double> sorted;
    std::vector<double> ts_order;
    for (const Json &e : events.arr) {
        const std::string ph = e.at("ph").asStr();
        const double pid = e.at("pid").asNum(-1);
        if (ph == "M") {
            if (e.at("name").asStr() == "process_name") {
                named.insert(pid);
                const std::string label =
                    e.at("args").at("name").asStr();
                if (pid <= 2)
                    EXPECT_EQ(label.rfind("supervisor", 0), 0u) << label;
                else
                    EXPECT_EQ(label.rfind("shard 0", 0), 0u) << label;
            }
            if (e.at("name").asStr() == "process_sort_index")
                sorted.insert(pid);
            continue;
        }
        pids.insert(pid);
        ts_order.push_back(e.at("ts").asNum(-1));
        EXPECT_FALSE(e.at("name").asStr().empty());
    }
    EXPECT_EQ(pids, (std::set<double>{1, 2, 3, 4}));
    EXPECT_EQ(named, (std::set<double>{1, 2, 3, 4}));
    EXPECT_EQ(sorted, (std::set<double>{1, 2, 3, 4}));
    ASSERT_EQ(ts_order.size(), 4u);
    for (std::size_t i = 1; i < ts_order.size(); ++i)
        EXPECT_LE(ts_order[i - 1], ts_order[i]) << i;

    const Json &meta = doc->at("metadata");
    EXPECT_EQ(meta.at("stitched_sources").asNum(), 2.0);
    EXPECT_EQ(meta.at("retained_events").asNum(), 4.0);
    EXPECT_EQ(meta.at("dropped_events").asNum(), 3.0);
    std::filesystem::remove_all(dir);
}

TEST(TraceStitch, ToleratesTornAndMissingSources)
{
    const std::string dir = freshDir("capart_stitch_torn");
    writeTraceFile(dir + "/good.trace", 10.0, 0);
    {
        // A worker SIGKILLed mid-export leaves half a document.
        std::ofstream os(dir + "/torn.trace");
        os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [{\"na";
    }

    std::ostringstream os;
    obs::StitchStats stats;
    ASSERT_TRUE(obs::stitchTraces({{dir + "/good.trace", "supervisor"},
                                   {dir + "/torn.trace", "shard 0"},
                                   {dir + "/gone.trace", "shard 1"}},
                                  os, &stats));
    EXPECT_EQ(stats.sourcesRead, 1u);
    EXPECT_EQ(stats.sourcesMalformed, 1u);
    EXPECT_EQ(stats.sourcesMissing, 1u);
    EXPECT_EQ(stats.events, 2u);

    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc && doc->isObj());
    EXPECT_EQ(doc->at("metadata").at("sources_missing").asNum(), 1.0);
    EXPECT_EQ(doc->at("metadata").at("sources_malformed").asNum(), 1.0);
    std::filesystem::remove_all(dir);
}

TEST(TraceStitch, AllSourcesUnreadableStillWritesAFrame)
{
    const std::string dir = freshDir("capart_stitch_empty");
    std::ostringstream os;
    obs::StitchStats stats;
    EXPECT_FALSE(obs::stitchTraces({{dir + "/a.trace", "shard 0"},
                                    {dir + "/b.trace", "shard 1"}},
                                   os, &stats));
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc && doc->isObj());
    EXPECT_TRUE(doc->at("traceEvents").isArr());
    EXPECT_EQ(stats.events, 0u);
    std::filesystem::remove_all(dir);
}

TEST(TraceStitch, FileVariantReplacesAtomically)
{
    const std::string dir = freshDir("capart_stitch_file");
    writeTraceFile(dir + "/w.trace", 0.0, 0);
    const std::string out = dir + "/stitched.trace";
    ASSERT_TRUE(obs::stitchTraceFiles({{dir + "/w.trace", "shard 0"}},
                                      out));
    EXPECT_FALSE(std::filesystem::exists(out + ".tmp"));
    const auto doc = Json::parse(slurp(out));
    ASSERT_TRUE(doc && doc->isObj());
    EXPECT_EQ(doc->at("metadata").at("stitched_sources").asNum(), 1.0);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------- report rendering --

obs::RunRecord
shardRec(unsigned shard, double wall_ms, double done, double cached,
         double retries, double quarantined, double kills, double crashes)
{
    obs::RunRecord r;
    r.kind = "shard";
    r.bench = "shardtest";
    r.run = "run-a";
    r.tsMs = 1000.0;
    r.wallMs = wall_ms;
    r.metrics = {{"shard", static_cast<double>(shard)},
                 {"points_assigned", done + quarantined},
                 {"points_done", done},
                 {"points_from_cache", cached},
                 {"points_quarantined", quarantined},
                 {"retries", retries},
                 {"spawns", retries + 1},
                 {"timeout_kills", kills},
                 {"crashes", crashes}};
    return r;
}

TEST(ReportShards, GroupedAndRenderedAsTheShardTable)
{
    std::vector<obs::RunRecord> records;
    obs::RunRecord p;
    p.kind = "point";
    p.bench = "shardtest";
    p.run = "run-a";
    p.spec = "spec-1";
    p.specHash = 0x1;
    p.tsMs = 999.0;
    p.metrics = {{"time_s", 1.0}};
    records.push_back(p);
    // Deliberately out of shard order: the table must sort by index.
    records.push_back(shardRec(1, 2500.0, 3, 1, 2, 1, 1, 2));
    records.push_back(shardRec(0, 1500.0, 4, 2, 0, 0, 0, 0));

    const auto groups = report::groupRuns(records);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].shards.size(), 2u);
    EXPECT_EQ(groups[0].points.size(), 1u);

    std::ostringstream os;
    report::writeMarkdown(os, groups, nullptr, report::GateOptions{});
    const std::string md = os.str();
    EXPECT_NE(md.find("### Shards"), std::string::npos);
    // shard 0: 4 done of which 2 cached → 2 computed, 1.50 s wall.
    const std::size_t row0 =
        md.find("| run-a | 0 | 1.50 | 2 | 2 | 0 | 0 | 0 | 0 |");
    const std::size_t row1 =
        md.find("| run-a | 1 | 2.50 | 2 | 1 | 2 | 1 | 1 | 2 |");
    EXPECT_NE(row0, std::string::npos) << md;
    EXPECT_NE(row1, std::string::npos) << md;
    EXPECT_LT(row0, row1); // sorted by shard index
}

TEST(ReportShards, StatusSnapshotRendersAsMarkdown)
{
    std::ostringstream os;
    report::writeStatusMarkdown(os, sampleStatus());
    const std::string md = os.str();
    EXPECT_NE(md.find("## Sweep status"), std::string::npos);
    EXPECT_NE(md.find("**running**"), std::string::npos);
    EXPECT_NE(md.find("6/10 points done"), std::string::npos);
    EXPECT_NE(md.find("| 0 | running | 3/5 | 1 | 0 | 2 | 3 | 1 | 1 |"),
              std::string::npos)
        << md;
    EXPECT_NE(md.find("| 1 | settled | 3/5 | 1 | 1 | 1 | 1 | 0 | 0 |"),
              std::string::npos)
        << md;
}

} // namespace
} // namespace capart
