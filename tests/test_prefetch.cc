/**
 * @file
 * Unit tests for the four Sandy Bridge prefetcher models and their
 * MSR-style control bits (§3.3).
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/prefetchers.hh"

namespace capart
{
namespace
{

std::vector<PrefetchRequest>
observeAll(PrefetcherBank &bank, std::uint64_t pc,
           const std::vector<Addr> &lines, bool missed_l1 = true)
{
    std::vector<PrefetchRequest> out;
    for (const Addr line : lines)
        bank.observe(pc, line, missed_l1, out);
    return out;
}

TEST(PrefetchConfig, MsrBitsRoundTrip)
{
    for (std::uint32_t bits = 0; bits < 16; ++bits) {
        const PrefetchConfig cfg = PrefetchConfig::fromMsrBits(bits);
        EXPECT_EQ(cfg.toMsrBits(), bits);
    }
    // A set bit disables the unit, as on real hardware.
    EXPECT_EQ(PrefetchConfig::allEnabled(true).toMsrBits(), 0u);
    EXPECT_EQ(PrefetchConfig::allEnabled(false).toMsrBits(), 0xfu);
}

TEST(DcuIpPrefetcher, DetectsConstantStride)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.dcuIp = true;
    PrefetcherBank bank(cfg);

    // Stride of 2 lines from one PC: after training, +stride prefetches.
    const auto reqs = observeAll(bank, 0x42, {10, 12, 14, 16, 18});
    ASSERT_FALSE(reqs.empty());
    for (const auto &r : reqs) {
        EXPECT_TRUE(r.intoL1);
        EXPECT_EQ(r.line % 2, 0u);
    }
    EXPECT_GT(bank.stats().dcuIpIssued, 0u);
    // The last prefetch targets the next stride step.
    EXPECT_EQ(reqs.back().line, 20u);
}

TEST(DcuIpPrefetcher, NoIssueOnRandomStream)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.dcuIp = true;
    PrefetcherBank bank(cfg);
    const auto reqs =
        observeAll(bank, 0x42, {10, 999, 23, 5000, 77, 4, 1234});
    EXPECT_TRUE(reqs.empty());
}

TEST(DcuStreamer, TriggersOnRepeatedLineAccess)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.dcuStreamer = true;
    PrefetcherBank bank(cfg);
    // Two touches of line 100 inside the recent buffer window.
    const auto reqs = observeAll(bank, 1, {100, 100});
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].line, 101u);
    EXPECT_TRUE(reqs[0].intoL1);
}

TEST(DcuStreamer, SingleTouchDoesNotTrigger)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.dcuStreamer = true;
    PrefetcherBank bank(cfg);
    const auto reqs = observeAll(bank, 1, {100, 200, 300});
    EXPECT_TRUE(reqs.empty());
}

TEST(MlcSpatial, TriggersOnSuccessiveLines)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.mlcSpatial = true;
    PrefetcherBank bank(cfg);
    const auto reqs = observeAll(bank, 1, {50, 51});
    ASSERT_EQ(reqs.size(), 1u);
    EXPECT_EQ(reqs[0].line, 52u);
    EXPECT_FALSE(reqs[0].intoL1) << "MLC prefetches fill the L2";
}

TEST(MlcSpatial, OnlyTrainsOnL1Misses)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.mlcSpatial = true;
    PrefetcherBank bank(cfg);
    const auto reqs = observeAll(bank, 1, {50, 51}, /*missed_l1=*/false);
    EXPECT_TRUE(reqs.empty()) << "L1 hits are invisible behind the L1";
}

TEST(MlcStreamer, DetectsAscendingStreamInPage)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.mlcStreamer = true;
    PrefetcherBank bank(cfg);
    const auto reqs = observeAll(bank, 1, {200, 201, 202, 203});
    ASSERT_FALSE(reqs.empty());
    for (const auto &r : reqs) {
        EXPECT_FALSE(r.intoL1);
        EXPECT_GT(r.line, 202u);
    }
}

TEST(MlcStreamer, DetectsDescendingStream)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.mlcStreamer = true;
    PrefetcherBank bank(cfg);
    const auto reqs = observeAll(bank, 1, {240, 239, 238, 237});
    ASSERT_FALSE(reqs.empty());
    // Each prefetch runs ahead (below) the line that triggered it; the
    // earliest trigger is line 238.
    for (const auto &r : reqs)
        EXPECT_LT(r.line, 238u);
}

TEST(MlcStreamer, DoesNotCrossPageBoundary)
{
    PrefetchConfig cfg = PrefetchConfig::allEnabled(false);
    cfg.mlcStreamer = true;
    PrefetcherBank bank(cfg);
    // 64 lines per 4 KB page; stream up to the page's last lines.
    const auto reqs = observeAll(bank, 1, {60, 61, 62, 63});
    for (const auto &r : reqs)
        EXPECT_LT(r.line, 64u) << "prefetch crossed the page";
}

TEST(PrefetcherBank, AllDisabledIsSilent)
{
    PrefetcherBank bank(PrefetchConfig::allEnabled(false));
    const auto reqs =
        observeAll(bank, 7, {1, 2, 3, 4, 5, 6, 7, 8, 8, 9, 10});
    EXPECT_TRUE(reqs.empty());
    EXPECT_EQ(bank.stats().totalIssued(), 0u);
}

TEST(PrefetcherBank, SequentialStreamEngagesMultipleUnits)
{
    PrefetcherBank bank(PrefetchConfig::allEnabled(true));
    std::vector<Addr> lines;
    for (Addr l = 0; l < 32; ++l)
        lines.push_back(l);
    observeAll(bank, 3, lines);
    EXPECT_GT(bank.stats().mlcSpatialIssued, 0u);
    EXPECT_GT(bank.stats().mlcStreamIssued, 0u);
}

TEST(PrefetcherBank, StatsResetClearsCounters)
{
    PrefetcherBank bank(PrefetchConfig::allEnabled(true));
    observeAll(bank, 3, {1, 2, 3, 4, 5});
    EXPECT_GT(bank.stats().totalIssued(), 0u);
    bank.resetStats();
    EXPECT_EQ(bank.stats().totalIssued(), 0u);
}

TEST(PrefetcherBank, ReconfigureAtRuntime)
{
    PrefetcherBank bank(PrefetchConfig::allEnabled(true));
    bank.setConfig(PrefetchConfig::allEnabled(false));
    const auto reqs = observeAll(bank, 3, {1, 2, 3, 4, 5, 5});
    EXPECT_TRUE(reqs.empty());
}

} // namespace
} // namespace capart
