/**
 * @file
 * Tests for the stack-distance / miss-rate-curve profiler, including a
 * property check against a naive reference LRU stack.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "analysis/mrc.hh"
#include "common/rng.hh"

namespace capart
{
namespace
{

/** Naive O(n) LRU stack used as the ground-truth oracle. */
class ReferenceStack
{
  public:
    /** @return stack distance, or -1 for a cold miss. */
    long
    access(Addr line)
    {
        const auto it = std::find(stack_.begin(), stack_.end(), line);
        long d = -1;
        if (it != stack_.end()) {
            d = static_cast<long>(std::distance(stack_.begin(), it));
            stack_.erase(it);
        }
        stack_.push_front(line);
        return d;
    }

  private:
    std::deque<Addr> stack_;
};

TEST(Mrc, RepeatedLineIsDistanceZero)
{
    StackDistanceProfiler p;
    p.access(7);
    p.access(7);
    p.access(7);
    EXPECT_EQ(p.accesses(), 3u);
    EXPECT_EQ(p.uniqueLines(), 1u);
    // Any cache with >= 1 line hits the two reuses.
    EXPECT_NEAR(p.missRatio(1), 1.0 / 3.0, 1e-12);
}

TEST(Mrc, SequentialLoopNeedsFullFootprint)
{
    StackDistanceProfiler p;
    constexpr std::uint64_t kLines = 64;
    for (int round = 0; round < 4; ++round)
        for (Addr l = 0; l < kLines; ++l)
            p.access(l);
    // LRU pathologically misses a cyclic working set one line too big.
    EXPECT_NEAR(p.missRatio(kLines - 1), 1.0, 1e-12);
    // At the full footprint every reuse hits: only cold misses remain.
    EXPECT_NEAR(p.missRatio(kLines),
                static_cast<double>(kLines) / p.accesses(), 1e-12);
}

TEST(Mrc, MissRatioMonotoneInCapacity)
{
    StackDistanceProfiler p;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i)
        p.access(rng.below(512));
    double prev = 1.1;
    for (const std::uint64_t cap : {8u, 32u, 128u, 256u, 512u, 1024u}) {
        const double m = p.missRatio(cap);
        EXPECT_LE(m, prev + 1e-12);
        prev = m;
    }
    // Everything fits at 512 lines: only cold misses remain.
    EXPECT_NEAR(p.missRatio(512),
                static_cast<double>(p.uniqueLines()) / p.accesses(),
                1e-12);
}

TEST(Mrc, MatchesReferenceStackOnRandomTrace)
{
    StackDistanceProfiler p;
    ReferenceStack ref;
    Rng rng(11);

    std::vector<std::uint64_t> ref_hist;
    std::uint64_t ref_cold = 0;
    const std::uint64_t n = 4000;
    for (std::uint64_t i = 0; i < n; ++i) {
        // A mix of hot (0..15) and colder (0..255) lines.
        const Addr line =
            rng.chance(0.5) ? rng.below(16) : rng.below(256);
        p.access(line);
        const long d = ref.access(line);
        if (d < 0) {
            ++ref_cold;
        } else {
            if (ref_hist.size() <= static_cast<std::size_t>(d))
                ref_hist.resize(static_cast<std::size_t>(d) + 1, 0);
            ++ref_hist[static_cast<std::size_t>(d)];
        }
    }

    // Same histogram, hence identical miss ratios everywhere.
    for (const std::uint64_t cap : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
        std::uint64_t ref_misses = ref_cold;
        for (std::size_t d = 0; d < ref_hist.size(); ++d) {
            if (d + 1 > cap)
                ref_misses += ref_hist[d];
        }
        EXPECT_NEAR(p.missRatio(cap),
                    static_cast<double>(ref_misses) / n, 1e-12)
            << "capacity " << cap;
    }
}

TEST(Mrc, MissRatiosBatchMatchesScalar)
{
    StackDistanceProfiler p;
    Rng rng(3);
    for (int i = 0; i < 5000; ++i)
        p.access(rng.below(128));
    const std::vector<std::uint64_t> caps = {1, 4, 16, 64, 128};
    const std::vector<double> batch = p.missRatios(caps);
    ASSERT_EQ(batch.size(), caps.size());
    for (std::size_t i = 0; i < caps.size(); ++i)
        EXPECT_DOUBLE_EQ(batch[i], p.missRatio(caps[i]));
}

TEST(Mrc, EmptyProfilerIsSafe)
{
    StackDistanceProfiler p;
    EXPECT_DOUBLE_EQ(p.missRatio(64), 0.0);
    EXPECT_EQ(p.accesses(), 0u);
    EXPECT_EQ(p.uniqueLines(), 0u);
}

} // namespace
} // namespace capart
