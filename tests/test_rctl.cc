/**
 * @file
 * Tests for the resctrl-style control plane: schemata parsing, CAT
 * mask rules, group lifecycle, task assignment, and monitoring.
 */

#include <gtest/gtest.h>

#include "rctl/resctrl.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

struct Fixture
{
    Fixture()
        : sys(SystemConfig{}),
          fg(sys.addAppOnCores(Catalog::byName("ferret").scaled(0.02), 0,
                               2)),
          bg(sys.addAppOnCores(Catalog::byName("dedup").scaled(0.02), 2,
                               2)),
          fs(sys)
    {
    }

    System sys;
    AppId fg;
    AppId bg;
    ResctrlFs fs;
};

TEST(Schemata, ParseValid)
{
    EXPECT_EQ(ResctrlFs::parseSchemata("L3:0=fff", 12)->bits(), 0xfffu);
    EXPECT_EQ(ResctrlFs::parseSchemata("L3:0=0f0", 12)->bits(), 0x0f0u);
    EXPECT_EQ(ResctrlFs::parseSchemata("  L3:0=3  ", 12)->bits(), 0x3u);
    EXPECT_EQ(ResctrlFs::parseSchemata("L3:0=FF", 12)->bits(), 0xffu);
}

TEST(Schemata, ParseRejectsGarbage)
{
    EXPECT_FALSE(ResctrlFs::parseSchemata("", 12).has_value());
    EXPECT_FALSE(ResctrlFs::parseSchemata("L3:0=", 12).has_value());
    EXPECT_FALSE(ResctrlFs::parseSchemata("L3:0=xyz", 12).has_value());
    EXPECT_FALSE(ResctrlFs::parseSchemata("L2:0=ff", 12).has_value());
    // Mask bits beyond the cache's ways.
    EXPECT_FALSE(ResctrlFs::parseSchemata("L3:0=1fff", 12).has_value());
}

TEST(Schemata, FormatRoundTrip)
{
    const WayMask m = WayMask::range(4, 6);
    EXPECT_EQ(ResctrlFs::parseSchemata(ResctrlFs::formatSchemata(m), 12)
                  ->bits(),
              m.bits());
}

TEST(CatRules, ContiguityEnforced)
{
    CatConstraints cat;
    EXPECT_TRUE(ResctrlFs::maskAllowed(WayMask{0b000111}, 12, cat));
    EXPECT_TRUE(ResctrlFs::maskAllowed(WayMask{0b111000}, 12, cat));
    EXPECT_FALSE(ResctrlFs::maskAllowed(WayMask{0b101}, 12, cat))
        << "holes violate Intel CAT";
    cat.requireContiguous = false;
    EXPECT_TRUE(ResctrlFs::maskAllowed(WayMask{0b101}, 12, cat));
}

TEST(CatRules, MinWaysAndBounds)
{
    CatConstraints cat;
    cat.minWays = 2;
    EXPECT_FALSE(ResctrlFs::maskAllowed(WayMask{0b1}, 12, cat));
    EXPECT_TRUE(ResctrlFs::maskAllowed(WayMask{0b11}, 12, cat));
    EXPECT_FALSE(ResctrlFs::maskAllowed(WayMask{}, 12, cat));
    EXPECT_FALSE(
        ResctrlFs::maskAllowed(WayMask{0xfffff}, 12, CatConstraints{}))
        << "mask beyond the cache's ways";
}

TEST(Resctrl, GroupLifecycle)
{
    Fixture f;
    EXPECT_EQ(f.fs.createGroup("latency"), RctlStatus::Ok);
    EXPECT_EQ(f.fs.createGroup("latency"), RctlStatus::Exists);
    EXPECT_EQ(f.fs.listGroups().size(), 2u);
    EXPECT_EQ(f.fs.removeGroup("latency"), RctlStatus::Ok);
    EXPECT_EQ(f.fs.removeGroup("latency"), RctlStatus::NotFound);
    EXPECT_EQ(f.fs.removeGroup(""), RctlStatus::Busy)
        << "default group is permanent";
}

TEST(Resctrl, ClosLimitEnforced)
{
    Fixture f;
    CatConstraints cat;
    cat.maxGroups = 2;
    ResctrlFs fs(f.sys, cat);
    EXPECT_EQ(fs.createGroup("a"), RctlStatus::Ok);
    EXPECT_EQ(fs.createGroup("b"), RctlStatus::Ok);
    EXPECT_EQ(fs.createGroup("c"), RctlStatus::NoSpace);
}

TEST(Resctrl, SchemataWriteAppliesToMembers)
{
    Fixture f;
    ASSERT_EQ(f.fs.createGroup("latency"), RctlStatus::Ok);
    ASSERT_EQ(f.fs.assignApp("latency", f.fg), RctlStatus::Ok);
    ASSERT_EQ(f.fs.writeSchemata("latency", "L3:0=ff0"),
              RctlStatus::Ok);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0xff0u);
    // The other app is untouched.
    EXPECT_EQ(f.sys.wayMask(f.bg), WayMask::all(12));
    EXPECT_EQ(*f.fs.readSchemata("latency"), "L3:0=ff0");
}

TEST(Resctrl, AssignAfterSchemataInheritsMask)
{
    Fixture f;
    ASSERT_EQ(f.fs.createGroup("batch"), RctlStatus::Ok);
    ASSERT_EQ(f.fs.writeSchemata("batch", "L3:0=00f"), RctlStatus::Ok);
    ASSERT_EQ(f.fs.assignApp("batch", f.bg), RctlStatus::Ok);
    EXPECT_EQ(f.sys.wayMask(f.bg).bits(), 0x00fu);
    EXPECT_EQ(f.fs.groupOf(f.bg), "batch");
    EXPECT_EQ(f.fs.groupOf(f.fg), "");
}

TEST(Resctrl, ReassignmentMovesBetweenGroups)
{
    Fixture f;
    f.fs.createGroup("a");
    f.fs.createGroup("b");
    f.fs.writeSchemata("a", "L3:0=f00");
    f.fs.writeSchemata("b", "L3:0=0ff");
    f.fs.assignApp("a", f.fg);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0xf00u);
    f.fs.assignApp("b", f.fg);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0x0ffu);
    EXPECT_EQ(f.fs.groupOf(f.fg), "b");
    // Group a is now empty and removable.
    EXPECT_EQ(f.fs.removeGroup("a"), RctlStatus::Ok);
}

TEST(Resctrl, InvalidSchemataRejected)
{
    Fixture f;
    f.fs.createGroup("g");
    EXPECT_EQ(f.fs.writeSchemata("g", "L3:0=505"),
              RctlStatus::InvalidMask); // holes
    EXPECT_EQ(f.fs.writeSchemata("g", "bogus"), RctlStatus::ParseError);
    EXPECT_EQ(f.fs.writeSchemata("nope", "L3:0=f"),
              RctlStatus::NotFound);
}

TEST(Schemata, ParseStatusDistinguishesFailureModes)
{
    WayMask out;
    // Malformed text (would be EINVAL before reaching the mask checks).
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("", 12, out),
              RctlStatus::ParseError);
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L2:0=ff", 12, out),
              RctlStatus::ParseError);
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L3:0=", 12, out),
              RctlStatus::ParseError);
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L3:0=xyz", 12, out),
              RctlStatus::ParseError);
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L3:0=fffffffff", 12, out),
              RctlStatus::ParseError)
        << "mask literal longer than any supported cache";
    // Well-formed text carrying an unusable mask.
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L3:0=0", 12, out),
              RctlStatus::InvalidMask)
        << "empty mask would starve the group";
    EXPECT_EQ(ResctrlFs::parseSchemataStatus("L3:0=1fff", 12, out),
              RctlStatus::InvalidMask)
        << "bits beyond the cache's ways";
    // And the good case still lands in `out`.
    ASSERT_EQ(ResctrlFs::parseSchemataStatus("L3:0=ff0", 12, out),
              RctlStatus::Ok);
    EXPECT_EQ(out.bits(), 0xff0u);
}

TEST(Resctrl, IdempotentRewriteIsNoOp)
{
    Fixture f;
    f.fs.createGroup("g");
    f.fs.assignApp("g", f.fg);
    ASSERT_EQ(f.fs.writeSchemata("g", "L3:0=ff0"), RctlStatus::Ok);

    // A hook that fails every write: the no-op rewrite must succeed
    // without consulting it (retries of an applied mask stay cheap).
    struct FailAll : RctlFaultHook
    {
        RctlStatus onSchemataWrite(const std::string &) override
        {
            return RctlStatus::IoError;
        }
        bool onApplyMask(const std::string &, AppId) override
        {
            return false;
        }
    } hook;
    f.fs.setFaultHook(&hook);
    EXPECT_EQ(f.fs.writeSchemata("g", "L3:0=ff0"), RctlStatus::Ok);
    EXPECT_EQ(f.fs.writeSchemata("g", "L3:0=00f"), RctlStatus::IoError);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0xff0u)
        << "failed write must not leak a partial mask";
}

TEST(Resctrl, PartialApplyRollsBack)
{
    Fixture f;
    f.fs.createGroup("g");
    f.fs.assignApp("g", f.fg);
    f.fs.assignApp("g", f.bg);
    ASSERT_EQ(f.fs.writeSchemata("g", "L3:0=fff"), RctlStatus::Ok);

    // Fail the second member's mask update: the first member must be
    // rolled back so the group never observes a torn write.
    struct FailSecond : RctlFaultHook
    {
        unsigned calls = 0;
        RctlStatus onSchemataWrite(const std::string &) override
        {
            return RctlStatus::Ok;
        }
        bool onApplyMask(const std::string &, AppId) override
        {
            return ++calls != 2;
        }
    } hook;
    f.fs.setFaultHook(&hook);
    EXPECT_EQ(f.fs.writeSchemata("g", "L3:0=00f"), RctlStatus::IoError);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0xfffu);
    EXPECT_EQ(f.sys.wayMask(f.bg).bits(), 0xfffu);
    EXPECT_EQ(*f.fs.readSchemata("g"), "L3:0=fff");

    // With the fault cleared the same write goes through.
    f.fs.setFaultHook(nullptr);
    EXPECT_EQ(f.fs.writeSchemata("g", "L3:0=00f"), RctlStatus::Ok);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0x00fu);
    EXPECT_EQ(f.sys.wayMask(f.bg).bits(), 0x00fu);
}

TEST(Resctrl, WriteWithRetryRecoversFromTransientFailures)
{
    Fixture f;
    f.fs.createGroup("g");
    f.fs.assignApp("g", f.fg);

    // Transient EIO: fails twice, then heals.
    struct FailTwice : RctlFaultHook
    {
        unsigned calls = 0;
        RctlStatus onSchemataWrite(const std::string &) override
        {
            return ++calls <= 2 ? RctlStatus::IoError : RctlStatus::Ok;
        }
        bool onApplyMask(const std::string &, AppId) override
        {
            return true;
        }
    } hook;
    f.fs.setFaultHook(&hook);
    EXPECT_EQ(f.fs.writeSchemataWithRetry("g", "L3:0=0f0", 2),
              RctlStatus::IoError)
        << "retry budget exhausted";
    hook.calls = 0;
    EXPECT_EQ(f.fs.writeSchemataWithRetry("g", "L3:0=0f0", 3),
              RctlStatus::Ok);
    EXPECT_EQ(f.sys.wayMask(f.fg).bits(), 0x0f0u);

    // Permanent errors are not retried: a parse error fails once.
    struct CountOnly : RctlFaultHook
    {
        unsigned calls = 0;
        RctlStatus onSchemataWrite(const std::string &) override
        {
            ++calls;
            return RctlStatus::Ok;
        }
        bool onApplyMask(const std::string &, AppId) override
        {
            return true;
        }
    } counter;
    f.fs.setFaultHook(&counter);
    EXPECT_EQ(f.fs.writeSchemataWithRetry("g", "garbage", 5),
              RctlStatus::ParseError);
    EXPECT_EQ(counter.calls, 0u)
        << "malformed text must be rejected before touching hardware";
}

TEST(Resctrl, MonitoringAggregatesGroupTraffic)
{
    Fixture f;
    f.fs.createGroup("latency");
    f.fs.assignApp("latency", f.fg);
    f.sys.run();
    const auto mon = f.fs.monitor("latency");
    ASSERT_TRUE(mon.has_value());
    EXPECT_GT(mon->llcAccesses, 0u);
    EXPECT_GE(mon->llcAccesses, mon->llcHits);
    EXPECT_FALSE(f.fs.monitor("ghost").has_value());
}

TEST(Resctrl, StatusNames)
{
    EXPECT_STREQ(rctlStatusName(RctlStatus::Ok), "ok");
    EXPECT_STREQ(rctlStatusName(RctlStatus::InvalidMask),
                 "invalid-mask");
    EXPECT_STREQ(rctlStatusName(RctlStatus::ParseError), "parse-error");
    EXPECT_STREQ(rctlStatusName(RctlStatus::IoError), "io-error");
}

} // namespace
} // namespace capart
