/**
 * @file
 * Unit tests for the way-partitionable set-associative cache — the
 * paper's hardware mechanism (§2.1). The three load-bearing semantics:
 * hits are allowed in any way, replacement is restricted to the
 * accessor's mask, and remasking never flushes resident data.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/units.hh"
#include "mem/set_assoc_cache.hh"
#include "mem/way_mask.hh"

namespace capart
{
namespace
{

CacheConfig
smallCache(ReplPolicy repl = ReplPolicy::LRU, unsigned ways = 4,
           unsigned partition_slots = 4)
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 16 * ways * kLineBytes; // 16 sets
    cfg.ways = ways;
    cfg.repl = repl;
    cfg.index = IndexFn::Modulo;
    cfg.partitionSlots = partition_slots;
    return cfg;
}

/** Line address landing in set @p set of a 16-set modulo-indexed cache. */
Addr
lineInSet(unsigned set, unsigned k)
{
    return set + 16ull * k;
}

TEST(WayMask, BasicOperations)
{
    const WayMask all = WayMask::all(12);
    EXPECT_EQ(all.count(), 12u);
    EXPECT_TRUE(all.contains(0));
    EXPECT_TRUE(all.contains(11));
    EXPECT_FALSE(all.contains(12));

    const WayMask lo = WayMask::range(0, 6);
    const WayMask hi = WayMask::range(6, 6);
    EXPECT_EQ(lo.count(), 6u);
    EXPECT_EQ(hi.count(), 6u);
    EXPECT_EQ((lo & hi).count(), 0u);
    EXPECT_EQ((lo | hi), all);
    EXPECT_EQ(lo.str(12), "0b000000111111");
}

TEST(WayMask, EmptyAndEquality)
{
    WayMask empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(WayMask::range(2, 3).bits(), 0b11100u);
    EXPECT_EQ(WayMask(0b1010), WayMask(0b1010));
}

TEST(SetAssocCache, HitAfterFill)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.access(lineInSet(3, 0), false, 0).hit);
    EXPECT_TRUE(c.access(lineInSet(3, 0), false, 0).hit);
    EXPECT_TRUE(c.probe(lineInSet(3, 0)));
    EXPECT_FALSE(c.probe(lineInSet(3, 1)));
}

TEST(SetAssocCache, LruEvictsOldest)
{
    SetAssocCache c(smallCache(ReplPolicy::LRU));
    // Fill the 4 ways of set 0.
    for (unsigned k = 0; k < 4; ++k)
        c.access(lineInSet(0, k), false, 0);
    // Touch line 0 so line 1 becomes LRU.
    c.access(lineInSet(0, 0), false, 0);
    const CacheAccessResult r = c.access(lineInSet(0, 4), false, 0);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.victimLine, lineInSet(0, 1));
}

TEST(SetAssocCache, DirtyVictimReported)
{
    SetAssocCache c(smallCache(ReplPolicy::LRU));
    c.access(lineInSet(0, 0), true, 0); // store: dirty
    for (unsigned k = 1; k < 4; ++k)
        c.access(lineInSet(0, k), false, 0);
    const CacheAccessResult r = c.access(lineInSet(0, 4), false, 0);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.victimLine, lineInSet(0, 0));
    EXPECT_TRUE(r.victimDirty);
}

TEST(SetAssocCache, CleanVictimNotDirty)
{
    SetAssocCache c(smallCache(ReplPolicy::LRU));
    for (unsigned k = 0; k < 5; ++k)
        c.access(lineInSet(0, k), false, 0);
    // Line 0 was evicted clean; re-fetch and evict line 1.
    const CacheAccessResult r = c.access(lineInSet(0, 5), false, 0);
    ASSERT_TRUE(r.evicted);
    EXPECT_FALSE(r.victimDirty);
}

// The core partitioning semantics (§2.1): a slot restricted to some
// ways may still *hit* on lines anywhere in the set.
TEST(SetAssocCache, HitsAllowedInAnyWay)
{
    SetAssocCache c(smallCache());
    c.setPartitionMask(0, WayMask::range(0, 2));
    c.setPartitionMask(1, WayMask::range(2, 2));

    // Slot 0 fills into its ways.
    c.access(lineInSet(5, 0), false, 0);
    // Slot 1 hits on slot 0's data despite a disjoint mask.
    EXPECT_TRUE(c.access(lineInSet(5, 0), false, 1).hit);
}

// ... but it may only replace within its own ways.
TEST(SetAssocCache, ReplacementRestrictedToMask)
{
    SetAssocCache c(smallCache());
    c.setPartitionMask(0, WayMask::range(0, 2));
    c.setPartitionMask(1, WayMask::range(2, 2));

    // Slot 0 streams many lines through set 0.
    for (unsigned k = 0; k < 32; ++k)
        c.access(lineInSet(0, k), false, 0);
    // Slot 1 installs two lines; they go to ways 2..3.
    c.access(lineInSet(0, 100), false, 1);
    c.access(lineInSet(0, 101), false, 1);
    // More slot-0 streaming cannot evict slot 1's lines.
    for (unsigned k = 32; k < 64; ++k)
        c.access(lineInSet(0, k), false, 0);
    EXPECT_TRUE(c.probe(lineInSet(0, 100)));
    EXPECT_TRUE(c.probe(lineInSet(0, 101)));
}

// Changing the mask must not flush: resident lines stay and can still
// be hit by everyone.
TEST(SetAssocCache, RemaskDoesNotFlush)
{
    SetAssocCache c(smallCache());
    c.setPartitionMask(0, WayMask::range(0, 4));
    for (unsigned k = 0; k < 4; ++k)
        c.access(lineInSet(2, k), false, 0);

    c.setPartitionMask(0, WayMask::range(0, 1));
    for (unsigned k = 0; k < 4; ++k)
        EXPECT_TRUE(c.probe(lineInSet(2, k))) << "line " << k;
    // Hits on now-out-of-mask ways still count as hits.
    EXPECT_TRUE(c.access(lineInSet(2, 3), false, 0).hit);
}

TEST(SetAssocCache, OverlappingMasksShareWays)
{
    SetAssocCache c(smallCache());
    c.setPartitionMask(0, WayMask::range(0, 3)); // ways 0-2
    c.setPartitionMask(1, WayMask::range(2, 2)); // ways 2-3: overlap on 2
    c.access(lineInSet(1, 0), false, 0);
    c.access(lineInSet(1, 1), false, 1);
    EXPECT_TRUE(c.probe(lineInSet(1, 0)));
    EXPECT_TRUE(c.probe(lineInSet(1, 1)));
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache c(smallCache());
    c.access(lineInSet(7, 0), true, 0);
    const InvalidateResult inv = c.invalidate(lineInSet(7, 0));
    EXPECT_TRUE(inv.wasPresent);
    EXPECT_TRUE(inv.wasDirty);
    EXPECT_FALSE(c.probe(lineInSet(7, 0)));
    EXPECT_FALSE(c.invalidate(lineInSet(7, 0)).wasPresent);
}

TEST(SetAssocCache, InvalidWaysPreferredOverEviction)
{
    SetAssocCache c(smallCache());
    c.access(lineInSet(0, 0), false, 0);
    // Three ways are still invalid: no eviction may happen.
    for (unsigned k = 1; k < 4; ++k) {
        const CacheAccessResult r = c.access(lineInSet(0, k), false, 0);
        EXPECT_FALSE(r.hit);
        EXPECT_FALSE(r.evicted) << "line " << k;
    }
}

TEST(SetAssocCache, PartitionStatsPerSlot)
{
    SetAssocCache c(smallCache());
    c.access(lineInSet(0, 0), false, 0);
    c.access(lineInSet(0, 0), false, 0);
    c.access(lineInSet(0, 1), false, 1);
    EXPECT_EQ(c.slotStats(0).accesses, 2u);
    EXPECT_EQ(c.slotStats(0).hits, 1u);
    EXPECT_EQ(c.slotStats(0).misses(), 1u);
    EXPECT_EQ(c.slotStats(1).accesses, 1u);
    EXPECT_EQ(c.totalStats().accesses, 3u);
    c.resetStats();
    EXPECT_EQ(c.totalStats().accesses, 0u);
}

TEST(SetAssocCache, FillDoesNotCountDemandStats)
{
    SetAssocCache c(smallCache());
    c.fill(lineInSet(0, 0), false, 0);
    EXPECT_EQ(c.totalStats().accesses, 0u);
    EXPECT_TRUE(c.probe(lineInSet(0, 0)));
}

TEST(SetAssocCache, MarkDirtyAndTouch)
{
    SetAssocCache c(smallCache());
    EXPECT_FALSE(c.markDirty(lineInSet(0, 0)));
    EXPECT_FALSE(c.touchLine(lineInSet(0, 0)));
    c.access(lineInSet(0, 0), false, 0);
    EXPECT_TRUE(c.markDirty(lineInSet(0, 0)));
    EXPECT_TRUE(c.touchLine(lineInSet(0, 0)));
    // Dirty mark shows up when the line is eventually evicted.
    for (unsigned k = 1; k < 5; ++k)
        c.access(lineInSet(0, k), false, 0);
    // Line 0 was LRU (markDirty touched it, then 4 newer lines came).
    EXPECT_FALSE(c.probe(lineInSet(0, 0)));
}

TEST(SetAssocCache, ResidentLinesCount)
{
    SetAssocCache c(smallCache());
    EXPECT_EQ(c.residentLines(), 0u);
    for (unsigned k = 0; k < 10; ++k)
        c.access(lineInSet(k, 0), false, 0);
    EXPECT_EQ(c.residentLines(), 10u);
}

TEST(SetAssocCache, HashedIndexSpreadsConflicts)
{
    CacheConfig cfg = smallCache();
    cfg.index = IndexFn::Hashed;
    SetAssocCache hashed(cfg);
    SetAssocCache modulo(smallCache());

    // Lines exactly one cache-stride apart conflict in the modulo
    // cache but spread under hashed indexing.
    std::set<std::uint64_t> hashed_sets;
    for (unsigned k = 0; k < 8; ++k) {
        hashed_sets.insert(hashed.setIndex(16ull * k));
        EXPECT_EQ(modulo.setIndex(16ull * k), 0u);
    }
    EXPECT_GT(hashed_sets.size(), 3u);
}

// Property sweep: every replacement policy must (a) only ever evict
// within the allowed mask and (b) respect partition isolation.
class ReplacementPolicyTest : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(ReplacementPolicyTest, VictimsAlwaysWithinMask)
{
    SetAssocCache c(smallCache(GetParam(), 8, 4));
    const WayMask mask = WayMask::range(2, 3); // ways 2..4
    c.setPartitionMask(1, mask);

    // Pre-fill all ways via slot 0 (full mask).
    for (unsigned k = 0; k < 8; ++k)
        c.access(lineInSet(0, k), false, 0);
    std::set<Addr> initial;
    for (unsigned k = 0; k < 8; ++k)
        initial.insert(lineInSet(0, k));

    // Slot 1 streams; victims must be the lines slot 1 can reach, and
    // at most 3 of the initial lines may ever be displaced.
    unsigned displaced = 0;
    for (unsigned k = 100; k < 200; ++k) {
        const CacheAccessResult r = c.access(lineInSet(0, k), false, 1);
        ASSERT_FALSE(r.hit);
        ASSERT_TRUE(r.evicted);
        if (initial.count(r.victimLine))
            ++displaced;
    }
    EXPECT_LE(displaced, 3u);
}

TEST_P(ReplacementPolicyTest, WorkingSetSmallerThanMaskIsRetained)
{
    SetAssocCache c(smallCache(GetParam(), 8, 2));
    c.setPartitionMask(0, WayMask::range(0, 4));
    // Re-walk a 3-line working set in one set many times: after warmup
    // it must always hit (any sane policy keeps a WS smaller than assoc).
    unsigned misses = 0;
    for (unsigned round = 0; round < 50; ++round) {
        for (unsigned k = 0; k < 3; ++k)
            misses += !c.access(lineInSet(4, k), false, 0).hit;
    }
    EXPECT_EQ(misses, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementPolicyTest,
                         ::testing::Values(ReplPolicy::LRU,
                                           ReplPolicy::BitPLRU,
                                           ReplPolicy::NRU,
                                           ReplPolicy::Random),
                         [](const auto &info) {
                             switch (info.param) {
                               case ReplPolicy::LRU:
                                 return "LRU";
                               case ReplPolicy::BitPLRU:
                                 return "BitPLRU";
                               case ReplPolicy::NRU:
                                 return "NRU";
                               default:
                                 return "Random";
                             }
                         });

// Capacity property across partition sizes: a random working set sized
// to fit its partition must produce a near-perfect hit rate, while one
// twice the partition must miss substantially.
class PartitionCapacityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PartitionCapacityTest, PartitionBoundsEffectiveCapacity)
{
    const unsigned ways = GetParam();
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 12 * kLineBytes; // 64 sets x 12 ways
    cfg.ways = 12;
    cfg.repl = ReplPolicy::LRU;
    cfg.partitionSlots = 2;
    SetAssocCache c(cfg);
    c.setPartitionMask(0, WayMask::range(0, ways));

    const unsigned fit_lines = 64 * ways; // exactly the partition
    // Sequential re-walk of a fitting working set: hits after warmup.
    for (unsigned round = 0; round < 4; ++round)
        for (unsigned l = 0; l < fit_lines; ++l)
            c.access(l, false, 0);
    c.resetStats();
    for (unsigned l = 0; l < fit_lines; ++l)
        c.access(l, false, 0);
    const PartitionStats fit = c.slotStats(0);
    EXPECT_EQ(fit.misses(), 0u) << "ways=" << ways;
}

INSTANTIATE_TEST_SUITE_P(WayCounts, PartitionCapacityTest,
                         ::testing::Values(1u, 2u, 3u, 6u, 9u, 12u));

} // namespace
} // namespace capart
