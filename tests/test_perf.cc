/**
 * @file
 * Unit tests for the perf-counter framework: free-running counters,
 * derived metrics, and the windowed monitor the dynamic partitioning
 * framework polls (§6.2).
 */

#include <gtest/gtest.h>

#include "perf/perf_counters.hh"

namespace capart
{
namespace
{

TEST(PerfCounterSet, AccumulateAndReset)
{
    PerfCounterSet c;
    c.add(PerfEvent::Instructions, 1000);
    c.add(PerfEvent::Instructions, 500);
    c.add(PerfEvent::LlcMisses, 30);
    EXPECT_EQ(c.read(PerfEvent::Instructions), 1500u);
    EXPECT_EQ(c.read(PerfEvent::LlcMisses), 30u);
    c.reset();
    EXPECT_EQ(c.read(PerfEvent::Instructions), 0u);
}

TEST(PerfCounterSet, DerivedMetrics)
{
    PerfCounterSet c;
    c.add(PerfEvent::Instructions, 10000);
    c.add(PerfEvent::Cycles, 20000);
    c.add(PerfEvent::LlcReferences, 500);
    c.add(PerfEvent::LlcMisses, 100);
    EXPECT_DOUBLE_EQ(c.mpki(), 10.0);
    EXPECT_DOUBLE_EQ(c.apki(), 50.0);
    EXPECT_DOUBLE_EQ(c.ipc(), 0.5);
}

TEST(PerfCounterSet, ZeroInstructionsSafe)
{
    PerfCounterSet c;
    EXPECT_DOUBLE_EQ(c.mpki(), 0.0);
    EXPECT_DOUBLE_EQ(c.apki(), 0.0);
    EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
}

TEST(PerfEventNames, AllNamed)
{
    EXPECT_STREQ(perfEventName(PerfEvent::Instructions), "instructions");
    EXPECT_STREQ(perfEventName(PerfEvent::LlcMisses), "LLC-misses");
    EXPECT_STREQ(perfEventName(PerfEvent::DramWrites), "dram-writes");
}

TEST(PerfMonitor, ClosesWindowsOnSchedule)
{
    PerfMonitor mon(0.1); // 100 ms windows, like the paper
    mon.record(0.05, 1000, 50, 10);
    EXPECT_EQ(mon.windowCount(), 0u);
    mon.record(0.15, 1000, 50, 10); // crosses the 0.1 boundary
    ASSERT_EQ(mon.windowCount(), 1u);
    const PerfWindow &w = mon.windows()[0];
    EXPECT_DOUBLE_EQ(w.start, 0.0);
    EXPECT_DOUBLE_EQ(w.end, 0.1);
    EXPECT_EQ(w.insts, 1000u);
    EXPECT_DOUBLE_EQ(w.mpki, 10.0);
    EXPECT_DOUBLE_EQ(w.apki, 50.0);
}

TEST(PerfMonitor, EmptyWindowsForIdleGaps)
{
    PerfMonitor mon(0.1);
    mon.record(0.05, 1000, 0, 0);
    mon.record(0.45, 1000, 0, 0); // 3 boundaries crossed
    EXPECT_EQ(mon.windowCount(), 4u);
    EXPECT_EQ(mon.windows()[1].insts, 0u);
    EXPECT_DOUBLE_EQ(mon.windows()[1].mpki, 0.0);
}

TEST(PerfMonitor, MpkiTracksPhaseChange)
{
    PerfMonitor mon(0.1);
    // Low-MPKI phase, then high-MPKI phase.
    for (int i = 0; i < 5; ++i)
        mon.record(i * 0.02 + 0.01, 2000, 40, 4);
    for (int i = 0; i < 5; ++i)
        mon.record(0.1 + i * 0.02 + 0.01, 2000, 400, 200);
    mon.record(0.25, 1, 0, 0);
    ASSERT_GE(mon.windowCount(), 2u);
    EXPECT_LT(mon.windows()[0].mpki, 5.0);
    EXPECT_GT(mon.windows()[1].mpki, 15.0);
}

} // namespace
} // namespace capart
