/**
 * @file
 * Unit tests for the common module: types, RNG, units.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace capart
{
namespace
{

TEST(Types, LineAddrStripsOffset)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 1u);
    EXPECT_EQ(lineAddr(128 + 17), 2u);
}

TEST(Units, BinarySizes)
{
    EXPECT_EQ(kib(1), 1024u);
    EXPECT_EQ(mib(1), 1024u * 1024u);
    EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(mib(6) / (12 * kLineBytes), 8192u); // the paper's LLC sets
}

TEST(Units, TimeAndRate)
{
    EXPECT_DOUBLE_EQ(msec(100), 0.1);
    EXPECT_DOUBLE_EQ(usec(25), 25e-6);
    EXPECT_DOUBLE_EQ(ghz(3.4), 3.4e9);
    EXPECT_DOUBLE_EQ(gbps(21), 21e9);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

} // namespace
} // namespace capart
