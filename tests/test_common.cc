/**
 * @file
 * Unit tests for the common module: types, RNG, units.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace capart
{
namespace
{

TEST(Types, LineAddrStripsOffset)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 1u);
    EXPECT_EQ(lineAddr(128 + 17), 2u);
}

TEST(Units, BinarySizes)
{
    EXPECT_EQ(kib(1), 1024u);
    EXPECT_EQ(mib(1), 1024u * 1024u);
    EXPECT_EQ(gib(2), 2ull * 1024 * 1024 * 1024);
    EXPECT_EQ(mib(6) / (12 * kLineBytes), 8192u); // the paper's LLC sets
}

TEST(Units, TimeAndRate)
{
    EXPECT_DOUBLE_EQ(msec(100), 0.1);
    EXPECT_DOUBLE_EQ(usec(25), 25e-6);
    EXPECT_DOUBLE_EQ(ghz(3.4), 3.4e9);
    EXPECT_DOUBLE_EQ(gbps(21), 21e9);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000000ull}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Json, ParseDumpRoundTrip)
{
    const std::string text =
        "{\"a\":1.5,\"b\":\"x\\\"y\",\"c\":[true,false,null],"
        "\"d\":{\"nested\":-2}}";
    const auto doc = Json::parse(text);
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->at("a").asNum(), 1.5);
    EXPECT_EQ(doc->at("b").asStr(), "x\"y");
    ASSERT_EQ(doc->at("c").arr.size(), 3u);
    EXPECT_TRUE(doc->at("c").arr[0].asBool());
    EXPECT_TRUE(doc->at("c").arr[2].isNull());
    EXPECT_DOUBLE_EQ(doc->at("d").at("nested").asNum(), -2.0);
    // dump() of a parsed document must parse back to the same values.
    const auto again = Json::parse(doc->dump());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->dump(), doc->dump());
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(Json::parse("").has_value());
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("{\"a\":}").has_value());
    EXPECT_FALSE(Json::parse("{} trailing").has_value())
        << "trailing garbage must fail, not be ignored";
    EXPECT_FALSE(Json::parse("[1,]").has_value());
    EXPECT_FALSE(Json::parse("nul").has_value());
}

TEST(Json, AbsentKeysChainToNullWithFallbacks)
{
    const auto doc = Json::parse("{\"a\":{\"b\":3}}");
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->at("missing").isNull());
    EXPECT_TRUE(doc->at("missing").at("deeper").isNull());
    EXPECT_DOUBLE_EQ(doc->at("missing").asNum(7.0), 7.0);
    EXPECT_EQ(doc->at("missing").asStr("dflt"), "dflt");
}

TEST(Logging, LevelNamesRoundTrip)
{
    for (LogLevel lvl : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error}) {
        LogLevel back{};
        ASSERT_TRUE(parseLogLevel(logLevelName(lvl), &back));
        EXPECT_EQ(back, lvl);
    }
    LogLevel out{};
    EXPECT_FALSE(parseLogLevel("verbose", &out));
    EXPECT_FALSE(parseLogLevel("", &out));
}

TEST(Logging, SinkWritesParsableJsonlAndFiltersByLevel)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "capart-log-test.jsonl")
            .string();
    std::remove(path.c_str());

    EXPECT_FALSE(logEnabled(LogLevel::Error)) << "no sink: disabled";
    setLogSink(path);
    setLogLevel(LogLevel::Info);
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));

    logEvent(LogLevel::Info, "unit.test",
             {{"t_s", 1.25},
              {"kind", "breach"},
              {"count", std::uint64_t{0xffffffffffffffffULL}},
              {"ok", true}});
    logEvent(LogLevel::Debug, "unit.dropped"); // filtered out
    setLogSink(""); // close and flush

    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1u) << "debug event must be filtered";

    const auto doc = Json::parse(lines[0]);
    ASSERT_TRUE(doc.has_value()) << "log line must be valid JSON";
    EXPECT_EQ(doc->at("level").asStr(), "info");
    EXPECT_EQ(doc->at("event").asStr(), "unit.test");
    EXPECT_DOUBLE_EQ(doc->at("t_s").asNum(), 1.25);
    EXPECT_EQ(doc->at("kind").asStr(), "breach");
    EXPECT_NE(lines[0].find("\"count\":18446744073709551615"),
              std::string::npos)
        << "u64 fields print all 64 bits, not a rounded double";
    EXPECT_TRUE(doc->at("ok").asBool());
    EXPECT_GT(doc->at("ts_ms").asNum(), 0.0);

    std::remove(path.c_str());
}

} // namespace
} // namespace capart
