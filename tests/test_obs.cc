/**
 * @file
 * Tests for the observability layer (src/obs) and its two contracts:
 *
 *  1. What it records is right: metrics count exactly (including under
 *     concurrent increments), histograms bucket correctly, the tracer
 *     keeps the most recent window when a ring wraps, and the Chrome
 *     trace export is well-formed JSON with monotonic timestamps and
 *     properly nested wall-clock spans.
 *  2. What it costs is nothing when off: the runtime-disabled path has
 *     negligible overhead and — the load-bearing property — enabling
 *     observability changes no experiment output bit.
 *
 * The trace assertions run against an in-process replica of
 * bench_fig13_dynamic (the same Consolidation spec with the Dynamic
 * policy), which must yield remask events, plus a synthetically driven
 * partitioner guaranteeing phase-change events.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_partitioner.hh"
#include "exec/sweep_runner.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

// ------------------------------------------------ minimal JSON parser --

/**
 * Just enough JSON to validate the exporters: objects, arrays,
 * strings, numbers, booleans, null. Strict on structure (trailing
 * garbage fails), permissive on nothing.
 */
struct Json
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &key) const { return obj.count(key) > 0; }

    const Json &
    at(const std::string &key) const
    {
        static const Json null;
        const auto it = obj.find(key);
        return it == obj.end() ? null : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    std::optional<Json>
    parse()
    {
        std::optional<Json> v = value();
        skipWs();
        if (!v || pos_ != s_.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    string()
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return std::nullopt;
        ++pos_;
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return std::nullopt;
                c = s_[pos_++];
                // Only the escapes the exporters emit.
                if (c == 'n')
                    c = '\n';
                else if (c == 't')
                    c = '\t';
            }
            out += c;
        }
        if (pos_ >= s_.size())
            return std::nullopt;
        ++pos_; // closing quote
        return out;
    }

    std::optional<Json>
    value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return std::nullopt;
        const char c = s_[pos_];
        Json v;
        if (c == '{') {
            ++pos_;
            v.kind = Json::Kind::Obj;
            skipWs();
            if (consume('}'))
                return v;
            while (true) {
                const auto key = string();
                if (!key || !consume(':'))
                    return std::nullopt;
                const auto val = value();
                if (!val)
                    return std::nullopt;
                v.obj.emplace(*key, *val);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Json::Kind::Arr;
            skipWs();
            if (consume(']'))
                return v;
            while (true) {
                const auto val = value();
                if (!val)
                    return std::nullopt;
                v.arr.push_back(*val);
                if (consume(','))
                    continue;
                if (consume(']'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '"') {
            const auto str = string();
            if (!str)
                return std::nullopt;
            v.kind = Json::Kind::Str;
            v.str = *str;
            return v;
        }
        if (s_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            v.kind = Json::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            v.kind = Json::Kind::Bool;
            return v;
        }
        if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return v;
        }
        // number
        std::size_t end = pos_;
        while (end < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[end])) ||
                s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
                s_[end] == 'e' || s_[end] == 'E')) {
            ++end;
        }
        if (end == pos_)
            return std::nullopt;
        v.kind = Json::Kind::Num;
        v.num = std::stod(s_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Parse or fail the test. */
Json
parseJsonOrFail(const std::string &text)
{
    const std::optional<Json> v = JsonParser(text).parse();
    EXPECT_TRUE(v.has_value()) << "invalid JSON:\n" << text.substr(0, 400);
    return v.value_or(Json{});
}

// ------------------------------------------------------- test helpers --

/** Enables recording for one test; restores "off" on scope exit. */
struct ObsEnabledGuard
{
    ObsEnabledGuard() { obs::setEnabled(true); }
    ~ObsEnabledGuard() { obs::setEnabled(false); }
};

/** Tests that need events recorded cannot run when compiled out. */
#define CAPART_REQUIRE_OBS_COMPILED_IN()                                    \
    do {                                                                    \
        if (!obs::kCompiledIn)                                              \
            GTEST_SKIP() << "observability compiled out (CAPART_OBS=OFF)";  \
    } while (0)

/** The traceEvents array of an exported trace, parsed and validated. */
std::vector<Json>
exportedEvents(const obs::Tracer &t)
{
    std::ostringstream os;
    t.writeChromeTrace(os);
    const Json root = parseJsonOrFail(os.str());
    EXPECT_EQ(root.kind, Json::Kind::Obj);
    EXPECT_TRUE(root.has("traceEvents"));
    const Json &events = root.at("traceEvents");
    EXPECT_EQ(events.kind, Json::Kind::Arr);
    return events.arr;
}

/** Non-metadata events must be sorted by "ts" in file order. */
void
expectMonotonicTimestamps(const std::vector<Json> &events)
{
    double last = -std::numeric_limits<double>::infinity();
    for (const Json &e : events) {
        if (e.at("ph").str == "M")
            continue;
        ASSERT_TRUE(e.has("ts")) << "event without a timestamp";
        const double ts = e.at("ts").num;
        EXPECT_GE(ts, last) << "timestamps regress in file order";
        last = ts;
    }
}

/**
 * Wall-clock ("pid" 2) complete events on one thread must nest: RAII
 * spans can contain each other or be disjoint, never partially
 * overlap. Verified with an interval stack per tid.
 */
void
expectHostSpansNest(const std::vector<Json> &events)
{
    constexpr double kEps = 1e-6;
    std::map<double, std::vector<std::pair<double, double>>> stacks;
    for (const Json &e : events) {
        if (e.at("ph").str != "X" || e.at("pid").num != 2.0)
            continue;
        const double tid = e.at("tid").num;
        const double start = e.at("ts").num;
        const double end = start + e.at("dur").num;
        ASSERT_GE(e.at("dur").num, 0.0);
        auto &stack = stacks[tid];
        while (!stack.empty() && stack.back().second <= start + kEps)
            stack.pop_back();
        if (!stack.empty()) {
            EXPECT_GE(start, stack.back().first - kEps)
                << "span starts before its enclosing span";
            EXPECT_LE(end, stack.back().second + kEps)
                << "span outlives its enclosing span: partial overlap";
        }
        stack.emplace_back(start, end);
    }
}

unsigned
countEventsNamed(const std::vector<Json> &events, const std::string &name)
{
    unsigned n = 0;
    for (const Json &e : events)
        n += e.at("name").str == name;
    return n;
}

/** A synthetic FG window with well-formed timestamps. */
PerfWindow
fgWindow(unsigned index, double mpki)
{
    PerfWindow w;
    w.start = static_cast<Seconds>(index);
    w.end = w.start + 1.0;
    w.insts = 1000000;
    w.llcAccesses = 2000;
    w.llcMisses = static_cast<std::uint64_t>(mpki * 1000);
    w.mpki = mpki;
    w.apki = 2.0;
    return w;
}

// ------------------------------------------------------------ metrics --

TEST(ObsMetrics, CounterGaugeHistogramBasics)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    obs::Gauge g;
    g.set(6.5);
    EXPECT_DOUBLE_EQ(g.value(), 6.5);
    g.set(-0.25);
    EXPECT_DOUBLE_EQ(g.value(), -0.25);

    obs::Histogram h;
    h.record(0); // bucket 0 (<= 0)
    h.record(1); // bucket 1 (<= 1)
    h.record(5); // bucket 3 (<= 7)
    h.record(5);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketBound(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketBound(3), 7u);
    EXPECT_EQ(obs::Histogram::bucketBound(64), ~0ULL);
}

TEST(ObsMetrics, RegistryReturnsStableReferences)
{
    obs::MetricsRegistry reg;
    obs::Counter &a = reg.counter("x");
    obs::Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b) << "same name must be the same counter";
    a.inc(3);
    EXPECT_EQ(reg.counter("x").value(), 3u);
    // Same name, different kind: a distinct metric, not a collision.
    reg.gauge("x").set(1.0);
    EXPECT_EQ(reg.counter("x").value(), 3u);
}

TEST(ObsMetrics, JsonExportParsesAndRoundTripsValues)
{
    obs::MetricsRegistry reg;
    reg.counter("sim.quanta").inc(1234);
    reg.counter("partitioner.remask_attempts").inc(7);
    reg.gauge("partitioner.fg_ways").set(9.0);
    reg.histogram("remask.latency").record(100);
    reg.histogram("remask.latency").record(3);

    std::ostringstream os;
    reg.writeJson(os);
    const Json root = parseJsonOrFail(os.str());

    EXPECT_DOUBLE_EQ(root.at("counters").at("sim.quanta").num, 1234.0);
    EXPECT_DOUBLE_EQ(
        root.at("counters").at("partitioner.remask_attempts").num, 7.0);
    EXPECT_DOUBLE_EQ(root.at("gauges").at("partitioner.fg_ways").num, 9.0);

    const Json &h = root.at("histograms").at("remask.latency");
    EXPECT_DOUBLE_EQ(h.at("count").num, 2.0);
    EXPECT_DOUBLE_EQ(h.at("sum").num, 103.0);
    ASSERT_EQ(h.at("buckets").kind, Json::Kind::Arr);
    std::uint64_t bucket_total = 0;
    for (const Json &b : h.at("buckets").arr) {
        EXPECT_TRUE(b.has("le"));
        EXPECT_TRUE(b.has("n"));
        bucket_total += static_cast<std::uint64_t>(b.at("n").num);
    }
    EXPECT_EQ(bucket_total, 2u) << "bucket counts must sum to count";
}

TEST(ObsMetrics, CsvExportHasOneRowPerStat)
{
    obs::MetricsRegistry reg;
    reg.counter("a.b").inc(5);
    reg.gauge("c").set(2.5);

    std::ostringstream os;
    reg.writeCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("counter,a.b,value,5"), std::string::npos) << csv;
    EXPECT_NE(csv.find("gauge,c,value,2.5"), std::string::npos) << csv;
}

TEST(ObsMetrics, ConcurrentIncrementsCountExactly)
{
    obs::MetricsRegistry reg;
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 200000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&reg] {
            // Registration from several threads must be safe too.
            obs::Counter &c = reg.counter("contended");
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
            reg.histogram("contended.h").record(1);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(reg.counter("contended").value(), kThreads * kPerThread);
    EXPECT_EQ(reg.histogram("contended.h").count(), kThreads);
}

TEST(ObsMetrics, ResetZeroesValuesKeepsNames)
{
    obs::MetricsRegistry reg;
    reg.counter("n").inc(9);
    reg.gauge("g").set(1.5);
    reg.histogram("h").record(4);
    reg.reset();
    EXPECT_EQ(reg.counter("n").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
}

TEST(ObsMetrics, PercentileEdgeCases)
{
    obs::Histogram h;
    // Empty histogram: every percentile is 0, not NaN or garbage.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);

    // A single sample: all percentiles land in its bucket.
    h.record(5); // bucket (3, 7]
    const double p50 = h.percentile(0.50);
    EXPECT_GT(p50, 3.0);
    EXPECT_LE(p50, 7.0);
    EXPECT_LE(h.percentile(0.01), h.percentile(0.99));
}

TEST(ObsMetrics, PercentilesAreOrderedAndBucketAccurate)
{
    obs::Histogram h;
    // 90 fast samples and 10 slow ones: p50 must sit in the fast
    // bucket, p99 in the slow one, and the three must be ordered.
    for (int i = 0; i < 90; ++i)
        h.record(3); // bucket (1, 3]
    for (int i = 0; i < 10; ++i)
        h.record(1000); // bucket (511, 1023]
    const double p50 = h.percentile(0.50);
    const double p90 = h.percentile(0.90);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p50, 3.0);
    EXPECT_GT(p99, 511.0);
    EXPECT_LE(p99, 1023.0);
}

TEST(ObsMetrics, PercentileHandlesZeroAndOverflowBuckets)
{
    obs::Histogram zeros;
    for (int i = 0; i < 8; ++i)
        zeros.record(0); // bucket 0 has upper bound 0
    EXPECT_DOUBLE_EQ(zeros.percentile(0.99), 0.0);

    obs::Histogram huge;
    huge.record(~0ULL); // lands in the saturating last bucket
    const double p = huge.percentile(0.50);
    EXPECT_GT(p, 0.0);
    EXPECT_FALSE(std::isnan(p));
}

TEST(ObsMetrics, ExportsIncludePercentiles)
{
    obs::MetricsRegistry reg;
    for (int i = 0; i < 100; ++i)
        reg.histogram("lat").record(i < 90 ? 4 : 400);

    std::ostringstream json;
    reg.writeJson(json);
    const Json root = parseJsonOrFail(json.str());
    const Json &h = root.at("histograms").at("lat");
    ASSERT_TRUE(h.has("p50"));
    ASSERT_TRUE(h.has("p90"));
    ASSERT_TRUE(h.has("p99"));
    EXPECT_LE(h.at("p50").num, h.at("p90").num);
    EXPECT_LE(h.at("p90").num, h.at("p99").num);
    EXPECT_GT(h.at("p99").num, 255.0) << "p99 must reflect the slow tail";

    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_NE(csv.str().find("histogram,lat,p50,"), std::string::npos);
    EXPECT_NE(csv.str().find("histogram,lat,p99,"), std::string::npos);
}

TEST(ObsMetrics, CounterSnapshotListsAllCounters)
{
    obs::MetricsRegistry reg;
    reg.counter("a").inc(2);
    reg.counter("b").inc(5);
    reg.gauge("g").set(9.0); // gauges are not part of the snapshot
    const auto snap = reg.counterSnapshot();
    ASSERT_EQ(snap.size(), 2u);
    double total = 0;
    for (const auto &[name, v] : snap)
        total += v;
    EXPECT_DOUBLE_EQ(total, 7.0);
}

// ------------------------------------------------------------- tracer --

TEST(ObsTracer, RecordsNothingWhileDisabled)
{
    ASSERT_FALSE(obs::enabled()) << "tests must start with obs off";
    obs::Tracer t(16);
    t.instant("x", "test", 1.0);
    t.complete("y", "test", 1.0, 2.0);
    { obs::TraceSpan span("z", "test"); }
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST(ObsTracer, ExportIsValidChromeTraceJson)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    obs::Tracer t(64);
    t.instant("phase.change", "partition", 10.0, {{"mpki", 42.5}});
    t.instant("remask", "partition", 20.0,
              {{"fg_ways", 9}, {"prev_fg_ways", 11}});
    t.complete("sim.run", "sim", 5.0, 30.0, {}, obs::Track::Host);

    std::ostringstream os;
    t.writeChromeTrace(os);
    const Json root = parseJsonOrFail(os.str());
    EXPECT_EQ(root.at("displayTimeUnit").str, "ms");

    const std::vector<Json> &events = root.at("traceEvents").arr;
    ASSERT_EQ(events.size(), 5u); // 2 metadata + 3 recorded

    // The two clock-domain metadata records come first.
    EXPECT_EQ(events[0].at("ph").str, "M");
    EXPECT_EQ(events[1].at("ph").str, "M");
    EXPECT_EQ(events[0].at("name").str, "process_name");

    unsigned instants = 0;
    for (const Json &e : events) {
        if (e.at("ph").str != "i")
            continue;
        ++instants;
        EXPECT_EQ(e.at("s").str, "t") << "instants need a scope field";
        EXPECT_EQ(e.at("pid").num, 1.0) << "sim-time track";
    }
    EXPECT_EQ(instants, 2u);

    for (const Json &e : events) {
        if (e.at("name").str == "remask") {
            EXPECT_DOUBLE_EQ(e.at("args").at("fg_ways").num, 9.0);
            EXPECT_DOUBLE_EQ(e.at("args").at("prev_fg_ways").num, 11.0);
        }
    }
    expectMonotonicTimestamps(events);
}

TEST(ObsTracer, RingWrapKeepsMostRecentEvents)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    constexpr std::size_t kCap = 8;
    obs::Tracer t(kCap);
    for (unsigned i = 0; i < 30; ++i)
        t.instant("e", "test", static_cast<double>(i));
    EXPECT_EQ(t.eventCount(), kCap);
    EXPECT_EQ(t.dropped(), 30u - kCap);

    const std::vector<Json> events = exportedEvents(t);
    double min_ts = std::numeric_limits<double>::infinity();
    unsigned recorded = 0;
    for (const Json &e : events) {
        if (e.at("ph").str == "M")
            continue;
        ++recorded;
        min_ts = std::min(min_ts, e.at("ts").num);
    }
    EXPECT_EQ(recorded, kCap);
    EXPECT_DOUBLE_EQ(min_ts, 30.0 - kCap)
        << "the oldest retained event must be the (N-cap)th";

    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(ObsTracer, ExportFooterReportsDroppedAndRetainedCounts)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    const std::uint64_t drops_before =
        obs::metrics().counter("trace.dropped").value();

    constexpr std::size_t kCap = 4;
    obs::Tracer t(kCap);
    for (unsigned i = 0; i < 10; ++i)
        t.instant("e", "test", static_cast<double>(i));

    std::ostringstream os;
    t.writeChromeTrace(os);
    const Json root = parseJsonOrFail(os.str());
    ASSERT_TRUE(root.has("metadata"))
        << "trace export must carry a metadata footer";
    EXPECT_DOUBLE_EQ(root.at("metadata").at("dropped_events").num, 6.0);
    // Retained counts recorded events only, not the two clock-domain
    // metadata records the exporter prepends.
    EXPECT_DOUBLE_EQ(root.at("metadata").at("retained_events").num,
                     static_cast<double>(kCap));

    // The global drop counter moved by the same amount, so exporters
    // that only see metrics still learn the trace was lossy.
    EXPECT_EQ(obs::metrics().counter("trace.dropped").value(),
              drops_before + 6);
}

TEST(ObsTracer, ExportFooterSplitsDropsByTrack)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    const std::uint64_t host_before =
        obs::metrics().counter("trace.dropped.host").value();

    constexpr std::size_t kCap = 4;
    obs::Tracer t(kCap);
    // Two host spans first, then a sim-instant flood. The flood evicts
    // the host events; the loss must be charged to the *victim's*
    // track, not the writer's, or host drops become invisible.
    t.complete("h1", "test", 0.0, 1.0, {}, obs::Track::Host);
    t.complete("h2", "test", 1.0, 1.0, {}, obs::Track::Host);
    for (unsigned i = 0; i < 10; ++i)
        t.instant("s", "test", 2.0 + i);

    EXPECT_EQ(t.dropped(obs::Track::Host), 2u);
    EXPECT_EQ(t.dropped(obs::Track::Sim), 6u);
    EXPECT_EQ(t.dropped(), 8u);

    std::ostringstream os;
    t.writeChromeTrace(os);
    const Json root = parseJsonOrFail(os.str());
    EXPECT_DOUBLE_EQ(root.at("metadata").at("dropped_events").num, 8.0);
    EXPECT_DOUBLE_EQ(root.at("metadata").at("dropped_host_events").num,
                     2.0);
    EXPECT_DOUBLE_EQ(root.at("metadata").at("dropped_sim_events").num,
                     6.0);

    // The per-track counter moved by exactly the host losses.
    EXPECT_EQ(obs::metrics().counter("trace.dropped.host").value(),
              host_before + 2);

    t.clear();
    EXPECT_EQ(t.dropped(obs::Track::Host), 0u);
    EXPECT_EQ(t.dropped(obs::Track::Sim), 0u);
}

TEST(ObsTracer, FullExportReportsZeroDropped)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    obs::Tracer t(64);
    t.instant("only", "test", 1.0);
    std::ostringstream os;
    t.writeChromeTrace(os);
    const Json root = parseJsonOrFail(os.str());
    EXPECT_DOUBLE_EQ(root.at("metadata").at("dropped_events").num, 0.0);
}

TEST(ObsTracer, SpansNestProperly)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    obs::tracer().clear();
    {
        obs::TraceSpan outer("outer", "test");
        {
            obs::TraceSpan inner1("inner1", "test", {{"k", 1}});
        }
        {
            obs::TraceSpan inner2("inner2", "test");
            obs::TraceSpan inner3("inner3", "test");
        }
    }
    const std::vector<Json> events = exportedEvents(obs::tracer());
    EXPECT_EQ(countEventsNamed(events, "outer"), 1u);
    EXPECT_EQ(countEventsNamed(events, "inner1"), 1u);
    expectMonotonicTimestamps(events);
    expectHostSpansNest(events);

    // inner1 must lie inside outer on the wall-clock track.
    double outer_start = 0, outer_end = 0, inner_start = 0, inner_end = 0;
    for (const Json &e : events) {
        if (e.at("name").str == "outer") {
            outer_start = e.at("ts").num;
            outer_end = outer_start + e.at("dur").num;
        } else if (e.at("name").str == "inner1") {
            inner_start = e.at("ts").num;
            inner_end = inner_start + e.at("dur").num;
        }
    }
    EXPECT_GE(inner_start, outer_start);
    EXPECT_LE(inner_end, outer_end);
    obs::tracer().clear();
}

// ----------------------------------------- fig13-style trace contents --

TEST(ObsTrace, DynamicConsolidationTraceHasRemaskAndNestedSpans)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    obs::tracer().clear();
    obs::metrics().reset();

    // The bench_fig13_dynamic workload, in-process and small: one
    // Consolidation point running the paper's dynamic policy.
    exec::SweepRunnerOptions ro;
    ro.jobs = 1;
    ro.baseSeed = 12345;
    exec::SweepRunner runner(ro);
    const std::vector<exec::SweepResult> results = runner.run(
        {exec::consolidationSpec("429.mcf", "dedup",
                                 exec::policyBit(Policy::Dynamic), 0.06,
                                 15e-6)});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].policy[static_cast<int>(Policy::Dynamic)]
                    .present);

    const std::vector<Json> events = exportedEvents(obs::tracer());
    expectMonotonicTimestamps(events);
    expectHostSpansNest(events);

    EXPECT_GE(countEventsNamed(events, "remask"), 1u)
        << "a dynamic run must remask at least once";
    EXPECT_GE(countEventsNamed(events, "sweep.point"), 1u);
    EXPECT_GE(countEventsNamed(events, "dynamic"), 1u)
        << "per-policy span missing";
    EXPECT_GE(countEventsNamed(events, "sim.run"), 1u);

    // Remask instants carry the new allocation on the sim-time track.
    for (const Json &e : events) {
        if (e.at("name").str != "remask")
            continue;
        EXPECT_EQ(e.at("pid").num, 1.0);
        EXPECT_GE(e.at("args").at("fg_ways").num, 1.0);
        EXPECT_LE(e.at("args").at("fg_ways").num, 12.0);
    }

    EXPECT_GE(obs::metrics()
                  .counter("partitioner.remask_attempts")
                  .value(),
              1u);
    EXPECT_GE(obs::metrics().counter("sim.quanta").value(), 1u);
    EXPECT_GE(obs::metrics().counter("rctl.schemata_writes").value(), 0u);

    obs::tracer().clear();
    obs::metrics().reset();
}

TEST(ObsTrace, PhaseChangeEventsAppearOnTheSimTrack)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    ObsEnabledGuard on;
    obs::tracer().clear();
    obs::metrics().reset();

    // Drive the partitioner with synthetic windows: a stable level,
    // then a sustained jump — a guaranteed phase change (a lone spike
    // would be quarantined, so send several samples at the new level).
    SystemConfig scfg;
    System sys(scfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);
    DynamicPartitioner ctrl(fg, {bg});

    unsigned t = 0;
    for (int i = 0; i < 6; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    for (int i = 0; i < 6; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 100.0));

    const std::vector<Json> events = exportedEvents(obs::tracer());
    expectMonotonicTimestamps(events);
    EXPECT_GE(countEventsNamed(events, "phase.change"), 1u);
    for (const Json &e : events) {
        if (e.at("name").str != "phase.change")
            continue;
        EXPECT_EQ(e.at("pid").num, 1.0) << "phase changes are sim-time";
        // Smoothed MPKI at detection time: above the old level, at or
        // below the new one.
        EXPECT_GT(e.at("args").at("mpki").num, 10.0);
        EXPECT_LE(e.at("args").at("mpki").num, 100.0);
    }
    EXPECT_GE(obs::metrics().counter("phase_detector.changes").value(),
              1u);
    EXPECT_GE(obs::metrics().counter("partitioner.phase_changes").value(),
              1u);

    obs::tracer().clear();
    obs::metrics().reset();
}

// ------------------------------------------------------- cost contract --

/** Field-by-field exact comparison; doubles must match to the bit. */
void
expectResultsIdentical(const exec::SweepResult &a,
                       const exec::SweepResult &b)
{
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.socketEnergy, b.socketEnergy);
    EXPECT_EQ(a.wallEnergy, b.wallEnergy);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.apki, b.apki);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.bgThroughput, b.bgThroughput);
    EXPECT_EQ(a.timedOut, b.timedOut);
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(a.policy[p].present, b.policy[p].present);
        EXPECT_EQ(a.policy[p].fgSlowdown, b.policy[p].fgSlowdown);
        EXPECT_EQ(a.policy[p].bgThroughput, b.policy[p].bgThroughput);
        EXPECT_EQ(a.policy[p].energyVsSequential,
                  b.policy[p].energyVsSequential);
        EXPECT_EQ(a.policy[p].wallEnergyVsSequential,
                  b.policy[p].wallEnergyVsSequential);
        EXPECT_EQ(a.policy[p].weightedSpeedup,
                  b.policy[p].weightedSpeedup);
        EXPECT_EQ(a.policy[p].fgWays, b.policy[p].fgWays);
    }
}

TEST(ObsZeroCost, EnablingObservabilityChangesNoOutputBit)
{
    // The fig13-style dynamic run — the most instrumented path in the
    // codebase (partitioner, phase detector, rctl, sim) — must produce
    // bit-identical results with recording off and on. Recording never
    // feeds back into simulation state; this is the test that keeps it
    // that way.
    const exec::ExperimentSpec spec = exec::consolidationSpec(
        "429.mcf", "dedup", exec::policyBit(Policy::Dynamic), 0.03,
        15e-6);

    ASSERT_FALSE(obs::enabled());
    const exec::SweepResult off1 = exec::runSpec(spec, 12345);
    const exec::SweepResult off2 = exec::runSpec(spec, 12345);
    expectResultsIdentical(off1, off2); // determinism baseline

    exec::SweepResult on_result;
    {
        ObsEnabledGuard on;
        obs::tracer().clear();
        on_result = exec::runSpec(spec, 12345);
        obs::tracer().clear();
        obs::metrics().reset();
    }
    expectResultsIdentical(off1, on_result);
}

TEST(ObsZeroCost, DisabledSeamIsNearFree)
{
    // A loop with a disabled seam vs the bare loop. Typical overhead
    // is well under 2%; the bound here is deliberately loose (CI
    // machines are noisy) — this guards against the seam accidentally
    // becoming a lock or an allocation, not against a mispredicted
    // branch. Min-of-N filters scheduler noise.
    ASSERT_FALSE(obs::enabled());
    constexpr std::uint64_t kIters = 2000000;
    constexpr int kRuns = 7;

    volatile std::uint64_t sink = 0;
    const auto time_loop = [&](bool with_seam) {
        double best = std::numeric_limits<double>::infinity();
        for (int r = 0; r < kRuns; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            std::uint64_t acc = 0;
            for (std::uint64_t i = 0; i < kIters; ++i) {
                acc += i ^ (acc >> 3);
                if (with_seam && obs::enabled()) {
                    static obs::Counter &c =
                        obs::metrics().counter("overhead.test");
                    c.inc();
                }
            }
            sink = acc;
            const auto t1 = std::chrono::steady_clock::now();
            best = std::min(
                best,
                std::chrono::duration<double>(t1 - t0).count());
        }
        return best;
    };

    const double bare = time_loop(false);
    const double seamed = time_loop(true);
    EXPECT_LT(seamed, bare * 1.5 + 1e-3)
        << "disabled observability seam is not near-free: bare=" << bare
        << "s seamed=" << seamed << "s";
}

TEST(ObsZeroCost, EnabledCounterHotPathIsCheap)
{
    if (!obs::kCompiledIn)
        GTEST_SKIP() << "observability compiled out";
    ObsEnabledGuard on;
    obs::Counter &c = obs::metrics().counter("hotpath.test");
    constexpr std::uint64_t kIters = 1000000;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kIters; ++i)
        c.inc();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns_per_inc =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kIters);
    EXPECT_LT(ns_per_inc, 200.0)
        << "a relaxed fetch_add should be single-digit ns";
    obs::metrics().reset();
}

} // namespace
} // namespace capart
