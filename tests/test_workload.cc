/**
 * @file
 * Unit tests for the workload module: catalog integrity against the
 * paper's §2.3 suite composition, the Amdahl work-sharing model, and
 * the deterministic access generators.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.hh"
#include "workload/catalog.hh"
#include "workload/generator.hh"

namespace capart
{
namespace
{

TEST(Catalog, FortyFiveApps)
{
    EXPECT_EQ(Catalog::all().size(), Catalog::kNumApps);
    EXPECT_EQ(Catalog::kNumApps, 45u);
}

TEST(Catalog, SuiteComposition)
{
    // §2.3: 13 PARSEC, 14 DaCapo, 12 SPEC, 4 parallel apps, 2 ubench.
    EXPECT_EQ(Catalog::bySuite(Suite::Parsec).size(), 13u);
    EXPECT_EQ(Catalog::bySuite(Suite::DaCapo).size(), 14u);
    EXPECT_EQ(Catalog::bySuite(Suite::SpecCpu).size(), 12u);
    EXPECT_EQ(Catalog::bySuite(Suite::ParallelApps).size(), 4u);
    EXPECT_EQ(Catalog::bySuite(Suite::Microbench).size(), 2u);
}

TEST(Catalog, NamesUniqueAndLookupsWork)
{
    std::set<std::string> names;
    for (const auto &a : Catalog::all())
        names.insert(a.name);
    EXPECT_EQ(names.size(), Catalog::kNumApps);

    EXPECT_TRUE(Catalog::contains("429.mcf"));
    EXPECT_FALSE(Catalog::contains("not-a-benchmark"));
    EXPECT_EQ(Catalog::byName("ferret").suite, Suite::Parsec);
}

TEST(Catalog, AllEntriesValidate)
{
    for (const auto &a : Catalog::all())
        a.validate(); // panics on inconsistency
    SUCCEED();
}

TEST(Catalog, SpecAndMicrobenchAreSingleThreaded)
{
    for (const auto &a : Catalog::all()) {
        if (a.suite == Suite::SpecCpu || a.suite == Suite::Microbench)
            EXPECT_EQ(a.maxThreads, 1u) << a.name;
        else
            EXPECT_GT(a.maxThreads, 1u) << a.name;
    }
}

TEST(Catalog, ClusterRepresentativesMatchTable3)
{
    const auto &reps = Catalog::clusterRepresentatives();
    EXPECT_EQ(reps[0], "429.mcf");
    EXPECT_EQ(reps[1], "459.GemsFDTD");
    EXPECT_EQ(reps[2], "ferret");
    EXPECT_EQ(reps[3], "fop");
    EXPECT_EQ(reps[4], "dedup");
    EXPECT_EQ(reps[5], "batik");
    for (const auto rep : reps)
        EXPECT_TRUE(Catalog::contains(rep));
}

TEST(Catalog, McfHasThePaperPhaseStructure)
{
    const AppParams &mcf = Catalog::byName("429.mcf");
    // Fig. 12: 5 transitions between low- and high-MPKI phases.
    EXPECT_EQ(mcf.phases.size(), 6u);
    EXPECT_GT(mcf.phases[0].memRatio, mcf.phases[1].memRatio);
}

TEST(Catalog, Table1ScalabilityClassesRecorded)
{
    EXPECT_EQ(Catalog::byName("h2").expectedScal, ScalClass::Low);
    EXPECT_EQ(Catalog::byName("dedup").expectedScal,
              ScalClass::Saturated);
    EXPECT_EQ(Catalog::byName("blackscholes").expectedScal,
              ScalClass::High);
    for (const auto &a : Catalog::bySuite(Suite::SpecCpu))
        EXPECT_EQ(a.expectedScal, ScalClass::Low) << a.name;
}

TEST(Catalog, Table2UtilityClassesRecorded)
{
    EXPECT_EQ(Catalog::byName("swaptions").expectedUtil, UtilClass::Low);
    EXPECT_EQ(Catalog::byName("tomcat").expectedUtil,
              UtilClass::Saturated);
    EXPECT_EQ(Catalog::byName("471.omnetpp").expectedUtil,
              UtilClass::High);
}

TEST(Catalog, ScaledPreservesEverythingButLength)
{
    const AppParams &a = Catalog::byName("ferret");
    const AppParams half = a.scaled(0.5);
    EXPECT_EQ(half.lengthInsts, a.lengthInsts / 2);
    EXPECT_EQ(half.phases.size(), a.phases.size());
    EXPECT_EQ(half.name, a.name);
}

TEST(WorkShare, SingleThreadGetsEverything)
{
    const AppParams &a = Catalog::byName("ferret");
    EXPECT_NEAR(static_cast<double>(threadWorkShare(a, 0, 1)),
                static_cast<double>(a.lengthInsts), 2.0);
}

TEST(WorkShare, SerialFractionStaysOnThreadZero)
{
    AppParams a = Catalog::byName("h2"); // serial-heavy
    const Insts t0 = threadWorkShare(a, 0, 4);
    const Insts t1 = threadWorkShare(a, 1, 4);
    EXPECT_GT(t0, t1);
    const double serial_part =
        static_cast<double>(t0 - t1) / static_cast<double>(a.lengthInsts);
    EXPECT_NEAR(serial_part, a.serialFraction, 0.02);
}

TEST(WorkShare, MaxThreadsCapsUsefulThreads)
{
    const AppParams &spec = Catalog::byName("462.libquantum");
    EXPECT_GT(threadWorkShare(spec, 0, 8), 0u);
    for (unsigned t = 1; t < 8; ++t)
        EXPECT_EQ(threadWorkShare(spec, t, 8), 0u);
}

TEST(WorkShare, SyncCostInflatesTotalWork)
{
    const AppParams &a = Catalog::byName("dedup"); // syncCost > 0
    Insts total1 = threadWorkShare(a, 0, 1);
    Insts total8 = 0;
    for (unsigned t = 0; t < 8; ++t)
        total8 += threadWorkShare(a, t, 8);
    EXPECT_GT(total8, total1);
}

TEST(Generator, DeterministicForSameSeed)
{
    const AppParams &a = Catalog::byName("canneal");
    ThreadWorkload w1(a, 0, 4, 0x1000000, 42);
    ThreadWorkload w2(a, 0, 4, 0x1000000, 42);
    std::vector<MemAccess> a1, a2;
    w1.runQuantum(10000, 0.0, a1);
    w2.runQuantum(10000, 0.0, a2);
    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t i = 0; i < a1.size(); ++i) {
        EXPECT_EQ(a1[i].addr, a2[i].addr);
        EXPECT_EQ(a1[i].pc, a2[i].pc);
        EXPECT_EQ(a1[i].write, a2[i].write);
    }
}

TEST(Generator, AccessCountTracksMemRatio)
{
    const AppParams &a = Catalog::byName("462.libquantum");
    ThreadWorkload w(a, 0, 1, 0x1000000, 1);
    std::vector<MemAccess> acc;
    const Insts ran = w.runQuantum(100000, 0.0, acc);
    EXPECT_EQ(ran, 100000u);
    const double ratio = static_cast<double>(acc.size()) / 100000.0;
    EXPECT_NEAR(ratio, a.phases[0].memRatio, 0.01);
}

TEST(Generator, AddressesStayWithinLayout)
{
    const AppParams &a = Catalog::byName("fop");
    const Addr base = 0x4000000000ull;
    ThreadWorkload w(a, 0, 4, base, 3);
    std::vector<MemAccess> acc;
    w.runQuantum(200000, 0.0, acc);
    std::uint64_t footprint = 0;
    for (const auto &ph : a.phases)
        for (const auto &p : ph.patterns)
            footprint += p.regionBytes + kLineBytes;
    for (const auto &m : acc) {
        EXPECT_GE(m.addr, base);
        EXPECT_LT(m.addr, base + footprint);
    }
}

TEST(Generator, UncachedFlagOnlyForStreamPattern)
{
    std::vector<MemAccess> acc;
    ThreadWorkload hog(Catalog::byName("stream_uncached"), 0, 1,
                       0x1000000, 5);
    hog.runQuantum(10000, 0.0, acc);
    ASSERT_FALSE(acc.empty());
    for (const auto &m : acc)
        EXPECT_TRUE(m.uncached);

    acc.clear();
    ThreadWorkload normal(Catalog::byName("ferret"), 0, 4, 0x2000000, 5);
    normal.runQuantum(10000, 0.0, acc);
    for (const auto &m : acc)
        EXPECT_FALSE(m.uncached);
}

TEST(Generator, PhaseSelectionByProgress)
{
    const AppParams &mcf = Catalog::byName("429.mcf");
    ThreadWorkload w(mcf, 0, 1, 0x1000000, 7);
    EXPECT_EQ(w.phaseIndexAt(0.0), 0u);
    EXPECT_EQ(w.phaseIndexAt(0.2), 1u);
    EXPECT_EQ(w.phaseIndexAt(0.99), 5u);
    EXPECT_EQ(w.phaseIndexAt(1.5), 5u) << "clamps past the end";
}

TEST(Generator, PointerChaseLowersEffectiveMlp)
{
    const AppParams &ccbench = Catalog::byName("ccbench"); // pure chase
    ThreadWorkload w(ccbench, 0, 1, 0x1000000, 9);
    EXPECT_NEAR(w.effectiveMlp(0.0), 1.0, 0.01);

    const AppParams &lib = Catalog::byName("462.libquantum"); // no chase
    ThreadWorkload w2(lib, 0, 1, 0x2000000, 9);
    EXPECT_NEAR(w2.effectiveMlp(0.0), lib.mlp, 0.01);
}

TEST(Generator, RestartRewindsWork)
{
    const AppParams &a = Catalog::byName("swaptions");
    ThreadWorkload w(a.scaled(0.001), 0, 1, 0x1000000, 11);
    std::vector<MemAccess> acc;
    while (!w.done())
        w.runQuantum(4000, 0.5, acc);
    EXPECT_TRUE(w.done());
    w.restart();
    EXPECT_FALSE(w.done());
    EXPECT_EQ(w.retired(), 0u);
}

TEST(Generator, SequentialCursorWrapsRegion)
{
    AppParams a;
    a.name = "seqtest";
    a.lengthInsts = 1'000'000;
    PhaseSpec ph;
    ph.instFraction = 1.0;
    ph.memRatio = 1.0;
    PatternSpec p;
    p.kind = PatternKind::Sequential;
    p.regionBytes = 1024; // 16 lines
    p.strideBytes = 64;
    p.weight = 1.0;
    ph.patterns = {p};
    a.phases = {ph};

    ThreadWorkload w(a, 0, 1, 0, 1);
    std::vector<MemAccess> acc;
    w.runQuantum(64, 0.0, acc);
    ASSERT_EQ(acc.size(), 64u);
    std::set<Addr> lines;
    for (const auto &m : acc)
        lines.insert(lineAddr(m.addr));
    EXPECT_EQ(lines.size(), 16u) << "walk wraps within the region";
}

// Property: the expected classifications must be internally coherent
// with the generator parameters that implement them.
TEST(CatalogProperty, BandwidthSensitiveAppsMoveData)
{
    for (const auto &a : Catalog::all()) {
        if (!a.expectedBandwidthSensitive ||
            a.suite == Suite::Microbench) {
            continue;
        }
        // Estimated DRAM-visible traffic per instruction (bytes).
        double bpi = 0.0;
        for (const auto &ph : a.phases) {
            double miss_weight = 0.0;
            for (const auto &p : ph.patterns) {
                const double line_rate =
                    (p.kind == PatternKind::Sequential ||
                     p.kind == PatternKind::StreamUncached)
                        ? static_cast<double>(p.strideBytes) / kLineBytes
                        : 1.0;
                if (p.regionBytes > mib(5))
                    miss_weight += p.weight * std::min(1.0, line_rate);
            }
            bpi += ph.instFraction * ph.memRatio * miss_weight *
                   kLineBytes;
        }
        EXPECT_GT(bpi, 0.4) << a.name
                            << " flagged bandwidth-sensitive but barely "
                               "touches DRAM";
    }
}

} // namespace
} // namespace capart
