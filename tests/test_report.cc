/**
 * @file
 * Tests for the run ledger (src/obs/run_ledger) and the regression
 * reporting pipeline over it (src/report): record round-trips,
 * crash-tolerant loading, run grouping, the BENCH_capart.json time
 * series, and the pass/warn/fail gate — including the headline
 * acceptance case, a synthetic 20% foreground-slowdown regression
 * that must FAIL while an unperturbed re-run PASSes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "obs/run_ledger.hh"
#include "report/report.hh"

namespace capart
{
namespace
{

namespace fs = std::filesystem;

std::string
tempPath(const char *name)
{
    return (fs::temp_directory_path() /
            (std::string("capart-report-test-") + name))
        .string();
}

obs::RunRecord
makeRecord()
{
    obs::RunRecord rec;
    rec.kind = "point";
    rec.bench = "fig13_dynamic";
    rec.run = "fig13_dynamic-1-1000";
    rec.spec = "capart-spec-v1|kind=consol|fg=a|bg=b";
    rec.specHash = 0xdeadbeefcafef00dULL;
    rec.seed = 0xffffffffffffffffULL; // exercises the exact u64 lane
    rec.tsMs = 1.7e12;
    rec.wallMs = 123.5;
    rec.simS = 0.25;
    rec.fromCache = true;
    rec.metrics = {{"dynamic.fg_slowdown", 1.015},
                   {"dynamic.bg_throughput_ips", 3.2e9}};
    rec.counters = {{"sim.quanta", 421.0}};
    return rec;
}

/**
 * A synthetic run: @p n points with distinct spec hashes, FG slowdown
 * @p slowdown and BG throughput @p bg_ips at every point.
 */
report::RunGroup
syntheticRun(const std::string &id, double ts_ms, unsigned n,
             double slowdown, double bg_ips)
{
    report::RunGroup g;
    g.run = id;
    g.bench = "synthetic";
    g.startTsMs = ts_ms;
    for (unsigned i = 0; i < n; ++i) {
        obs::RunRecord rec;
        rec.kind = "point";
        rec.bench = g.bench;
        rec.run = id;
        rec.specHash = 0x1000 + i;
        rec.tsMs = ts_ms + i;
        rec.metrics = {{"dynamic.fg_slowdown", slowdown},
                       {"dynamic.bg_throughput_ips", bg_ips}};
        g.points.push_back(std::move(rec));
    }
    return g;
}

// ------------------------------------------------------------ ledger --

TEST(RunLedger, EncodeDecodeRoundTripsEveryField)
{
    const obs::RunRecord rec = makeRecord();
    const std::string line = obs::RunLedger::encode(rec);
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "a record must be exactly one line";

    obs::RunRecord back;
    ASSERT_TRUE(obs::RunLedger::decode(line, &back));
    EXPECT_EQ(back.kind, rec.kind);
    EXPECT_EQ(back.bench, rec.bench);
    EXPECT_EQ(back.run, rec.run);
    EXPECT_EQ(back.spec, rec.spec);
    EXPECT_EQ(back.specHash, rec.specHash) << "u64 must round-trip exactly";
    EXPECT_EQ(back.seed, rec.seed) << "u64 must round-trip exactly";
    EXPECT_DOUBLE_EQ(back.tsMs, rec.tsMs);
    EXPECT_DOUBLE_EQ(back.wallMs, rec.wallMs);
    EXPECT_DOUBLE_EQ(back.simS, rec.simS);
    EXPECT_EQ(back.fromCache, rec.fromCache);
    ASSERT_EQ(back.metrics.size(), rec.metrics.size());
    EXPECT_EQ(back.metrics[0].first, "dynamic.fg_slowdown");
    EXPECT_DOUBLE_EQ(back.metrics[0].second, 1.015);
    ASSERT_EQ(back.counters.size(), 1u);
    EXPECT_DOUBLE_EQ(back.counters[0].second, 421.0);
}

TEST(RunLedger, DecodeRejectsGarbageAndWrongVersions)
{
    obs::RunRecord out;
    EXPECT_FALSE(obs::RunLedger::decode("", &out));
    EXPECT_FALSE(obs::RunLedger::decode("not json", &out));
    EXPECT_FALSE(obs::RunLedger::decode("{\"v\":999,\"kind\":\"point\"}",
                                        &out));
    EXPECT_FALSE(obs::RunLedger::decode("{\"v\":1,\"kind\":\"mystery\"}",
                                        &out));
    // A truncated tail — the crash case load() must tolerate.
    const std::string line = obs::RunLedger::encode(makeRecord());
    EXPECT_FALSE(
        obs::RunLedger::decode(line.substr(0, line.size() / 2), &out));
}

TEST(RunLedger, AppendThenLoadWithTornTail)
{
    const std::string path = tempPath("torn.jsonl");
    std::remove(path.c_str());
    {
        obs::RunLedger ledger(path);
        ASSERT_TRUE(ledger.ok());
        ledger.append(makeRecord());
        ledger.append(makeRecord());
        EXPECT_EQ(ledger.appended(), 2u);
    }
    // Simulate a crash mid-write: a half record at the tail.
    {
        std::ofstream out(path, std::ios::app);
        out << obs::RunLedger::encode(makeRecord()).substr(0, 40);
    }
    const auto loaded = obs::RunLedger::load(path);
    EXPECT_EQ(loaded.records.size(), 2u);
    EXPECT_EQ(loaded.skipped, 1u);
    std::remove(path.c_str());
}

TEST(RunLedger, MissingFileLoadsAsEmpty)
{
    const auto loaded =
        obs::RunLedger::load(tempPath("does-not-exist.jsonl"));
    EXPECT_TRUE(loaded.records.empty());
    EXPECT_EQ(loaded.skipped, 0u);
}

// ---------------------------------------------------------- grouping --

TEST(Report, GroupsByRunIdAndSortsByStartTime)
{
    std::vector<obs::RunRecord> records;
    const auto push = [&](const char *run, const char *kind, double ts) {
        obs::RunRecord rec;
        rec.run = run;
        rec.kind = kind;
        rec.bench = "b";
        rec.tsMs = ts;
        records.push_back(rec);
    };
    // Interleaved completion order, newer run first in the file.
    push("run-b", "point", 2000.0);
    push("run-a", "point", 1005.0);
    push("run-b", "point", 2001.0);
    push("run-a", "point", 1000.0);
    push("run-a", "bench", 1900.0);

    const auto groups = report::groupRuns(records);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].run, "run-a") << "groups sort by start time";
    EXPECT_EQ(groups[0].points.size(), 2u);
    EXPECT_EQ(groups[0].benchRecords.size(), 1u);
    EXPECT_DOUBLE_EQ(groups[0].startTsMs, 1000.0)
        << "start is the earliest record, not the first seen";
    EXPECT_EQ(groups[1].run, "run-b");
    EXPECT_EQ(groups[1].points.size(), 2u);
}

TEST(Report, MetricDirections)
{
    EXPECT_EQ(report::metricDirection("dynamic.fg_slowdown"), 1);
    EXPECT_EQ(report::metricDirection("time_s"), 1);
    EXPECT_EQ(report::metricDirection("socket_energy_j"), 1);
    EXPECT_EQ(report::metricDirection("mpki"), 1);
    EXPECT_EQ(report::metricDirection("shared.bg_throughput_ips"), -1);
    EXPECT_EQ(report::metricDirection("ipc"), -1);
    EXPECT_EQ(report::metricDirection("dynamic.weighted_speedup"), -1);
    EXPECT_EQ(report::metricDirection("accesses_per_s"), -1);
    EXPECT_EQ(report::metricDirection("biased.fg_ways"), 0)
        << "way counts are diagnostics, not gated";
    EXPECT_EQ(report::metricDirection("something.unknown"), 0);
}

TEST(Report, BenchJsonIsValidAndOrdered)
{
    const std::vector<report::RunGroup> groups = {
        syntheticRun("run-1", 1000.0, 3, 1.01, 3e9),
        syntheticRun("run-2", 2000.0, 3, 1.02, 3.1e9),
    };
    std::ostringstream os;
    report::writeBenchJson(os, groups);

    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value()) << "BENCH json must parse";
    EXPECT_EQ(doc->at("version").asNum(), 1.0);
    const Json &runs = doc->at("runs");
    ASSERT_EQ(runs.arr.size(), 2u);
    EXPECT_EQ(runs.arr[0].at("run").asStr(), "run-1");
    EXPECT_EQ(runs.arr[1].at("run").asStr(), "run-2");
    EXPECT_EQ(runs.arr[0].at("points").asNum(), 3.0);
    const Json &m =
        runs.arr[0].at("metrics").at("dynamic.fg_slowdown");
    EXPECT_DOUBLE_EQ(m.at("mean").asNum(), 1.01);
    EXPECT_DOUBLE_EQ(m.at("min").asNum(), 1.01);
    EXPECT_EQ(m.at("n").asNum(), 3.0);
}

// -------------------------------------------------------------- gate --

TEST(Report, IdenticalRunsPass)
{
    const auto base = syntheticRun("base", 1000.0, 8, 1.01, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.01, 3e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Pass);
    for (const auto &m : cmp.metrics) {
        EXPECT_EQ(m.verdict, report::Verdict::Pass) << m.name;
        EXPECT_EQ(m.pairs, 8u);
    }
}

TEST(Report, SyntheticFgSlowdownRegressionFails)
{
    // The acceptance case: a 20% foreground-slowdown regression across
    // every pair must FAIL the gate; the sign test has 8/8 worse pairs
    // (p = 2^-8 < 0.05).
    const auto base = syntheticRun("base", 1000.0, 8, 1.01, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.01 * 1.20, 3e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Fail);

    bool found = false;
    for (const auto &m : cmp.metrics) {
        if (m.name != "dynamic.fg_slowdown")
            continue;
        found = true;
        EXPECT_EQ(m.verdict, report::Verdict::Fail);
        EXPECT_EQ(m.worse, 8u);
        EXPECT_EQ(m.better, 0u);
        EXPECT_LT(m.pValue, 0.05);
        EXPECT_NEAR(m.relDelta, 0.20, 1e-9);
    }
    EXPECT_TRUE(found);
}

TEST(Report, ImprovementNeverFails)
{
    // 20% faster foreground and higher BG throughput: both metrics
    // moved in the *better* direction; the gate must stay PASS.
    const auto base = syntheticRun("base", 1000.0, 8, 1.25, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.01, 3.5e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Pass);
}

TEST(Report, ThroughputDropFailsInItsOwnDirection)
{
    const auto base = syntheticRun("base", 1000.0, 8, 1.01, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.01, 2.0e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Fail);
}

TEST(Report, SmallDriftOnlyWarns)
{
    const auto base = syntheticRun("base", 1000.0, 8, 1.00, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.03, 3e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Warn)
        << "3% worse is past warn (2%) but short of fail (5%)";
}

TEST(Report, FewPairsCanStillFailWithoutSignificance)
{
    // With 3 pairs the sign test cannot reach p <= 0.05 (2^-3 = 0.125);
    // the mean threshold and unanimous direction must carry the FAIL.
    const auto base = syntheticRun("base", 1000.0, 3, 1.01, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 3, 1.21, 3e9);
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Fail);
}

TEST(Report, DisjointSpecsProduceNoPairs)
{
    auto base = syntheticRun("base", 1000.0, 4, 1.01, 3e9);
    auto cur = syntheticRun("cur", 2000.0, 4, 2.0, 3e9);
    for (auto &rec : cur.points)
        rec.specHash += 0x999999; // no overlap with the baseline
    const auto cmp = report::compareRuns(base, cur);
    EXPECT_EQ(cmp.verdict, report::Verdict::Pass);
    EXPECT_TRUE(cmp.metrics.empty())
        << "metrics with zero pairs must not be compared";
}

TEST(Report, MarkdownContainsVerdictAndDeltas)
{
    const auto base = syntheticRun("base", 1000.0, 8, 1.01, 3e9);
    const auto cur = syntheticRun("cur", 2000.0, 8, 1.01 * 1.20, 3e9);
    const auto cmp = report::compareRuns(base, cur);
    std::ostringstream os;
    report::writeMarkdown(os, {base, cur}, &cmp, report::GateOptions{});
    const std::string md = os.str();
    EXPECT_NE(md.find("Regression gate: FAIL"), std::string::npos);
    EXPECT_NE(md.find("dynamic.fg_slowdown"), std::string::npos);
    EXPECT_NE(md.find("| run |"), std::string::npos);
}

} // namespace
} // namespace capart
