/**
 * @file
 * Tests for per-owner attribution, the decision journal, and the
 * dashboard — the three contracts of the attribution pipeline:
 *
 *  1. Conservation: what the sampler reports sums to what the models
 *     charged. Per-owner LLC lines sum to the resident total, the five
 *     stall buckets partition cycles exactly, attributed energy equals
 *     the model totals within floating-point accumulation slack
 *     (1e-9 relative), and per-channel DRAM bytes conserve.
 *  2. Replay: a journaled decision record contains everything
 *     decidePartition() read, so re-running the pure function on the
 *     recorded inputs reproduces the recorded outputs — including
 *     after a JSON round trip through an attribution side file.
 *  3. Zero cost: arming the sampler changes no experiment output bit,
 *     and with sampling unarmed (or observability compiled out)
 *     nothing is recorded at all.
 *
 * The end-to-end test runs the fig13 workload (a Consolidation spec
 * under the Dynamic policy) through a SweepRunner with an attrDir and
 * a ledger, then checks every artifact the pipeline promises: the
 * side file, the ledger pointers, the decision records, and the
 * dashboard rendered over all of it.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/decision_journal.hh"
#include "core/dynamic_partitioner.hh"
#include "dashboard/dashboard.hh"
#include "exec/sweep_runner.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

namespace fs = std::filesystem;

/** Tests that need samples recorded cannot run when compiled out. */
#define CAPART_REQUIRE_OBS_COMPILED_IN()                                    \
    do {                                                                    \
        if (!obs::kCompiledIn)                                              \
            GTEST_SKIP() << "observability compiled out (CAPART_OBS=OFF)";  \
    } while (0)

/**
 * Arms attribution recording for one test: observability on, the
 * sampler's period set, and both the scope and any deposited batches
 * cleared on entry and exit so tests never see each other's data.
 */
struct SamplingGuard
{
    explicit SamplingGuard(std::uint64_t period)
    {
        obs::setEnabled(true);
        obs::timeseries().clear();
        obs::timeseries().setPeriod(period);
    }

    ~SamplingGuard()
    {
        obs::timeseries().setPeriod(0);
        obs::timeseries().clear();
        obs::setEnabled(false);
    }
};

/** The fg/bg consolidation pair every sim-level test here runs. */
void
addPair(System &sys)
{
    sys.addAppOnCores(Catalog::byName("ferret").scaled(0.02), 0, 2);
    sys.addAppOnCores(Catalog::byName("dedup").scaled(0.02), 2, 2);
}

/** A synthetic FG window with well-formed timestamps. */
PerfWindow
fgWindow(unsigned index, double mpki)
{
    PerfWindow w;
    w.start = static_cast<Seconds>(index);
    w.end = w.start + 1.0;
    w.insts = 1000000;
    w.llcAccesses = 2000;
    w.llcMisses = static_cast<std::uint64_t>(mpki * 1000);
    w.mpki = mpki;
    w.apki = 2.0;
    return w;
}

/** |a - b| within 1e-9 relative (FP accumulation-order slack). */
void
expectNearRelative(double a, double b)
{
    const double tol = 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
    EXPECT_NEAR(a, b, tol);
}

/** Rules decidePartition() itself can emit (the replayable subset). */
bool
replayable(DecisionRule r)
{
    switch (r) {
      case DecisionRule::Hold:
      case DecisionRule::PhaseStartMax:
      case DecisionRule::ProbeShrink:
      case DecisionRule::SettleBack:
      case DecisionRule::SettleFloor:
      case DecisionRule::Retry:
        return true;
      default:
        // RejectHold / FallbackHold / FallbackEnter / ResumeProbe are
        // synthesized outside the decision step; their records carry
        // inputs for context, not for replay.
        return false;
    }
}

/** Replay every replayable decision of @p journal; count them. */
unsigned
expectJournalReplays(const std::vector<obs::JournalEntry> &journal)
{
    unsigned replayed = 0;
    for (const obs::JournalEntry &e : journal) {
        if (e.kind != "decision")
            continue;
        DecisionRule rule;
        EXPECT_TRUE(decisionRuleFromName(e.rule, &rule)) << e.rule;
        if (!decisionRuleFromName(e.rule, &rule) || !replayable(rule))
            continue;
        const DecisionInputs in = decisionInputsFromEntry(e);
        const Decision want = decisionFromEntry(e);
        const Decision got = decidePartition(in);
        EXPECT_EQ(static_cast<int>(got.rule), static_cast<int>(want.rule))
            << "rule " << e.rule << " at t=" << e.tUs;
        EXPECT_EQ(got.targetFgWays, want.targetFgWays);
        EXPECT_EQ(got.probingAfter, want.probingAfter);
        EXPECT_DOUBLE_EQ(got.delta, want.delta);
        ++replayed;
    }
    return replayed;
}

/** A small hand-built batch for serialization and dashboard tests. */
obs::AttributionBatch
syntheticBatch()
{
    obs::AttributionBatch b;
    b.label = "fg+bg";
    b.specHash = 0xdeadbeefcafef00dULL;
    for (int i = 0; i < 2; ++i) {
        obs::AttributionSample s;
        s.tUs = 100.0 * (i + 1);
        s.quantum = 8u * (i + 1);
        s.llcResidentLines = 3000 + 100 * i;
        s.llcSets = 2048;
        s.llcWays = 12;
        s.socketDynamicJ = 0.5 * (i + 1);
        s.dramJ = 0.125 * (i + 1);
        for (unsigned o = 0; o < 2; ++o) {
            obs::OwnerSample os_;
            os_.owner = o;
            os_.residentLines = 1500 + 50 * i + o;
            os_.occupancyWays =
                static_cast<double>(os_.residentLines) / 2048.0;
            os_.wayMaskBits = o == 0 ? 0xff0 : 0x00f;
            os_.retired = 1000000u * (i + 1);
            os_.cycles = 2000000u * (i + 1);
            os_.stallCompute = 1200000u * (i + 1);
            os_.stallL2 = 300000u * (i + 1);
            os_.stallLlc = 250000u * (i + 1);
            os_.stallDram = 200000u * (i + 1);
            os_.stallQueue = 50000u * (i + 1);
            os_.busyJ = 0.125 * (i + 1);
            os_.llcJ = 0.0625 * (i + 1);
            os_.dramJ = 0.03125 * (i + 1);
            os_.channelBytes = {4096u * (i + 1), 4096u * (i + 1) + o};
            s.owners.push_back(os_);
        }
        b.samples.push_back(s);
    }
    obs::JournalEntry e;
    e.tUs = 150.0;
    e.kind = "decision";
    e.rule = "probe_shrink";
    e.fields = {{"fg_ways", 9.0}, {"target_fg_ways", 8.0},
                {"applied", 1.0}};
    b.journal.push_back(e);
    return b;
}

// -------------------------------------------------- conservation ------

TEST(AttributionConservation, SamplesConserveOccupancyStallsAndEnergy)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(32);

    SystemConfig scfg;
    System sys(scfg);
    addPair(sys);
    sys.run();

    const obs::AttributionBatch batch = obs::timeseries().drainScope();
    ASSERT_GE(batch.samples.size(), 2u)
        << "a run of thousands of quanta must yield samples at period 32";

    const std::uint64_t period = 32;
    for (std::size_t i = 0; i < batch.samples.size(); ++i) {
        const obs::AttributionSample &s = batch.samples[i];
        EXPECT_EQ(s.llcWays, sys.llcWays());
        ASSERT_GT(s.llcSets, 0u);
        if (i > 0) {
            EXPECT_EQ(s.quantum - batch.samples[i - 1].quantum, period)
                << "samples must land on the period grid";
            EXPECT_GE(s.tUs, batch.samples[i - 1].tUs);
        }

        // Occupancy: every resident line belongs to exactly one app
        // (the address-space stride guarantees it), so the per-owner
        // counts partition the total.
        std::uint64_t owner_lines = 0;
        std::uint64_t stall_cycles = 0;
        std::uint64_t cycle_total = 0;
        double busy_llc_j = 0.0;
        double dram_j = 0.0;
        ASSERT_EQ(s.owners.size(), sys.numApps());
        for (const obs::OwnerSample &o : s.owners) {
            owner_lines += o.residentLines;
            EXPECT_NEAR(o.occupancyWays,
                        static_cast<double>(o.residentLines) /
                            static_cast<double>(s.llcSets),
                        1e-12);
            EXPECT_NE(o.wayMaskBits, 0u) << "owner without a way mask";

            // The five buckets partition cycles *exactly* — each
            // quantum's split truncates prefix sums, losing nothing.
            stall_cycles += o.stallCompute + o.stallL2 + o.stallLlc +
                            o.stallDram + o.stallQueue;
            cycle_total += o.cycles;
            EXPECT_EQ(o.stallCompute + o.stallL2 + o.stallLlc +
                          o.stallDram + o.stallQueue,
                      o.cycles)
                << "stall buckets must partition owner " << o.owner
                << "'s cycles";

            busy_llc_j += o.busyJ + o.llcJ;
            dram_j += o.dramJ;
        }
        EXPECT_EQ(owner_lines, s.llcResidentLines)
            << "per-owner lines must sum to the resident total";
        EXPECT_EQ(stall_cycles, cycle_total);

        // Every charge site passes an owner, so the attributed buckets
        // reach the model totals up to FP accumulation order.
        expectNearRelative(busy_llc_j, s.socketDynamicJ);
        expectNearRelative(dram_j, s.dramJ);
    }
}

TEST(AttributionConservation, ModelTotalsMatchOwnerBuckets)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(64);

    SystemConfig scfg;
    System sys(scfg);
    addPair(sys);
    sys.run();
    obs::timeseries().drainScope(); // not under test here

    // Energy: owner buckets vs the model's running totals.
    const EnergyModel &em = sys.energy();
    ASSERT_GE(em.ownerCount(), 2u);
    double busy_llc = 0.0;
    double dram_owned = 0.0;
    for (unsigned o = 0; o < em.ownerCount(); ++o) {
        const OwnerEnergy oe = em.ownerEnergy(o);
        busy_llc += oe.busyJ + oe.llcJ;
        dram_owned += oe.dramJ;
    }
    EXPECT_GT(em.dynamicSocketEnergy(), 0.0);
    EXPECT_GT(em.dramTransferEnergy(), 0.0);
    expectNearRelative(busy_llc, em.dynamicSocketEnergy());
    expectNearRelative(dram_owned, em.dramTransferEnergy());

    // DRAM: per-flow per-channel bytes conserve exactly — their sums
    // equal the per-channel totals, which sum to all interface bytes
    // (recording was on for the whole run, so nothing escaped).
    DramModel &dram = sys.dram();
    std::uint64_t all_channels = 0;
    for (unsigned ch = 0; ch < dram.channels(); ++ch) {
        std::uint64_t per_flow = 0;
        for (unsigned f = 0; f < dram.channelFlows(); ++f)
            per_flow += dram.channelBytes(f, ch);
        EXPECT_EQ(per_flow, dram.channelBytesTotal(ch))
            << "flow split of channel " << ch << " must sum to its total";
        all_channels += per_flow;
    }
    EXPECT_EQ(all_channels, dram.totalBytes());
}

// ------------------------------------------------------- gating -------

TEST(AttributionGating, NoSamplesWithoutAPeriod)
{
    SamplingGuard armed(0); // obs on, sampler unarmed
    SystemConfig scfg;
    System sys(scfg);
    addPair(sys);
    sys.run();
    const obs::AttributionBatch batch = obs::timeseries().drainScope();
    EXPECT_TRUE(batch.samples.empty())
        << "period 0 must record nothing";
}

TEST(AttributionGating, NoSamplesWhileDisabled)
{
    ASSERT_FALSE(obs::enabled()) << "tests must start with obs off";
    obs::timeseries().clear();
    obs::timeseries().setPeriod(16); // armed but obs is off
    SystemConfig scfg;
    System sys(scfg);
    addPair(sys);
    sys.run();
    obs::timeseries().setPeriod(0);
    const obs::AttributionBatch batch = obs::timeseries().drainScope();
    EXPECT_TRUE(batch.samples.empty())
        << "a period without obs::enabled() must record nothing";
}

TEST(AttributionGating, CompiledOutRecordsNothing)
{
    if (obs::kCompiledIn)
        GTEST_SKIP() << "only meaningful under CAPART_OBS=OFF";
    obs::setEnabled(true);
    obs::timeseries().setPeriod(4);
    SystemConfig scfg;
    System sys(scfg);
    addPair(sys);
    sys.run();
    obs::timeseries().setPeriod(0);
    obs::setEnabled(false);
    EXPECT_EQ(obs::timeseries().sampleCount(), 0u)
        << "attribution must compile out entirely";
}

TEST(AttributionZeroCost, SamplingChangesNoResultBit)
{
    // The load-bearing invariant: arming the sampler on the most
    // instrumented path (fig13's dynamic consolidation) changes no
    // output bit. Recording never feeds back into simulation state.
    const exec::ExperimentSpec spec = exec::consolidationSpec(
        "429.mcf", "dedup", exec::policyBit(Policy::Dynamic), 0.03, 15e-6);

    ASSERT_FALSE(obs::enabled());
    const exec::SweepResult off = exec::runSpec(spec, 12345);

    exec::SweepResult on;
    {
        SamplingGuard armed(8);
        on = exec::runSpec(spec, 12345);
        obs::metrics().reset();
    }

    EXPECT_EQ(off.time, on.time);
    EXPECT_EQ(off.socketEnergy, on.socketEnergy);
    EXPECT_EQ(off.wallEnergy, on.wallEnergy);
    EXPECT_EQ(off.mpki, on.mpki);
    EXPECT_EQ(off.ipc, on.ipc);
    EXPECT_EQ(off.bgThroughput, on.bgThroughput);
    for (int p = 0; p < 4; ++p) {
        EXPECT_EQ(off.policy[p].present, on.policy[p].present);
        EXPECT_EQ(off.policy[p].fgSlowdown, on.policy[p].fgSlowdown);
        EXPECT_EQ(off.policy[p].bgThroughput, on.policy[p].bgThroughput);
        EXPECT_EQ(off.policy[p].energyVsSequential,
                  on.policy[p].energyVsSequential);
        EXPECT_EQ(off.policy[p].weightedSpeedup,
                  on.policy[p].weightedSpeedup);
        EXPECT_EQ(off.policy[p].fgWays, on.policy[p].fgWays);
    }
}

// ---------------------------------------------- decision journal ------

TEST(DecisionJournal, RuleNamesRoundTrip)
{
    const DecisionRule all[] = {
        DecisionRule::Hold,          DecisionRule::PhaseStartMax,
        DecisionRule::ProbeShrink,   DecisionRule::SettleBack,
        DecisionRule::SettleFloor,   DecisionRule::Retry,
        DecisionRule::RejectHold,    DecisionRule::FallbackHold,
        DecisionRule::FallbackEnter, DecisionRule::ResumeProbe,
    };
    for (const DecisionRule r : all) {
        DecisionRule back;
        ASSERT_TRUE(decisionRuleFromName(decisionRuleName(r), &back));
        EXPECT_EQ(static_cast<int>(back), static_cast<int>(r));
    }
    DecisionRule out;
    EXPECT_FALSE(decisionRuleFromName("no_such_rule", &out));
}

TEST(DecisionJournal, EntryRoundTripsInputsAndOutputs)
{
    DecisionInputs in;
    in.rawMpki = 42.5;
    in.smoothedMpki = 40.25;
    in.lastMpki = 39.0;
    in.haveLast = true;
    in.phase = PhaseEvent::Stable;
    in.probing = true;
    in.retryPending = false;
    in.retryWays = 0;
    in.fgWays = 9;
    in.thr3 = 0.05;
    in.minDenominator = 0.5;
    in.minFgWays = 1;
    in.maxFgWays = 11; // the background always keeps at least one way

    const Decision out = decidePartition(in);
    const obs::JournalEntry e =
        makeDecisionEntry(1234.5, in, out, 12, true, 9);
    EXPECT_EQ(e.kind, "decision");
    EXPECT_EQ(e.rule, decisionRuleName(out.rule));

    const DecisionInputs in2 = decisionInputsFromEntry(e);
    const Decision replayed = decidePartition(in2);
    const Decision recorded = decisionFromEntry(e);
    EXPECT_EQ(static_cast<int>(replayed.rule),
              static_cast<int>(recorded.rule));
    EXPECT_EQ(replayed.targetFgWays, recorded.targetFgWays);
    EXPECT_EQ(replayed.probingAfter, recorded.probingAfter);
    EXPECT_DOUBLE_EQ(replayed.delta, recorded.delta);

    // The record carries the installed state and candidate masks too.
    EXPECT_DOUBLE_EQ(e.field("applied"), 1.0);
    EXPECT_DOUBLE_EQ(e.field("installed_fg_ways"), 9.0);
    EXPECT_DOUBLE_EQ(e.field("total_ways"), 12.0);
    EXPECT_NE(e.field("chosen_fg_mask"), 0.0);
    EXPECT_NE(e.field("chosen_bg_mask"), 0.0);
}

TEST(DecisionJournal, PartitionerDecisionsReplayFromTheJournal)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(0); // journal only; no sampling needed

    // Stable level, then a sustained jump: holds, a phase start, and a
    // probe sequence, all journaled.
    SystemConfig scfg;
    System sys(scfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);
    DynamicPartitioner ctrl(fg, {bg});

    unsigned t = 0;
    for (int i = 0; i < 8; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    for (int i = 0; i < 8; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 100.0));

    const obs::AttributionBatch batch = obs::timeseries().drainScope();
    ASSERT_GE(batch.journal.size(), 8u)
        << "every window must journal one decision";

    bool saw_phase_start = false;
    for (const obs::JournalEntry &e : batch.journal)
        saw_phase_start |= e.rule == "phase_start_max";
    EXPECT_TRUE(saw_phase_start)
        << "the MPKI jump must journal a phase start";

    const unsigned replayed = expectJournalReplays(batch.journal);
    EXPECT_GE(replayed, 8u);
    obs::metrics().reset();
}

// --------------------------------------------------- serialization ----

TEST(AttributionJson, DocumentRoundTrips)
{
    obs::AttributionBatch b = syntheticBatch();
    b.attrFile = "attr/some-file.json";
    std::ostringstream os;
    obs::writeAttributionJson(os, b);

    obs::AttributionBatch back;
    ASSERT_TRUE(obs::parseAttributionJson(os.str(), &back));
    EXPECT_EQ(back.label, b.label);
    EXPECT_EQ(back.specHash, b.specHash);
    EXPECT_EQ(back.attrFile, b.attrFile);
    ASSERT_EQ(back.samples.size(), b.samples.size());
    ASSERT_EQ(back.journal.size(), b.journal.size());

    for (std::size_t i = 0; i < b.samples.size(); ++i) {
        const obs::AttributionSample &want = b.samples[i];
        const obs::AttributionSample &got = back.samples[i];
        EXPECT_DOUBLE_EQ(got.tUs, want.tUs);
        EXPECT_EQ(got.quantum, want.quantum);
        EXPECT_EQ(got.llcResidentLines, want.llcResidentLines);
        EXPECT_EQ(got.llcSets, want.llcSets);
        EXPECT_EQ(got.llcWays, want.llcWays);
        EXPECT_DOUBLE_EQ(got.socketDynamicJ, want.socketDynamicJ);
        EXPECT_DOUBLE_EQ(got.dramJ, want.dramJ);
        ASSERT_EQ(got.owners.size(), want.owners.size());
        for (std::size_t o = 0; o < want.owners.size(); ++o) {
            const obs::OwnerSample &wo = want.owners[o];
            const obs::OwnerSample &go = got.owners[o];
            EXPECT_EQ(go.owner, wo.owner);
            EXPECT_EQ(go.residentLines, wo.residentLines);
            EXPECT_DOUBLE_EQ(go.occupancyWays, wo.occupancyWays);
            EXPECT_EQ(go.wayMaskBits, wo.wayMaskBits);
            EXPECT_EQ(go.retired, wo.retired);
            EXPECT_EQ(go.cycles, wo.cycles);
            EXPECT_EQ(go.stallCompute, wo.stallCompute);
            EXPECT_EQ(go.stallL2, wo.stallL2);
            EXPECT_EQ(go.stallLlc, wo.stallLlc);
            EXPECT_EQ(go.stallDram, wo.stallDram);
            EXPECT_EQ(go.stallQueue, wo.stallQueue);
            EXPECT_DOUBLE_EQ(go.busyJ, wo.busyJ);
            EXPECT_DOUBLE_EQ(go.llcJ, wo.llcJ);
            EXPECT_DOUBLE_EQ(go.dramJ, wo.dramJ);
            EXPECT_EQ(go.channelBytes, wo.channelBytes);
        }
    }
    const obs::JournalEntry &we = b.journal[0];
    const obs::JournalEntry &ge = back.journal[0];
    EXPECT_DOUBLE_EQ(ge.tUs, we.tUs);
    EXPECT_EQ(ge.kind, we.kind);
    EXPECT_EQ(ge.rule, we.rule);
    EXPECT_EQ(ge.fields, we.fields);
}

TEST(AttributionJson, RejectsForeignDocuments)
{
    obs::AttributionBatch out;
    EXPECT_FALSE(obs::parseAttributionJson("not json", &out));
    EXPECT_FALSE(obs::parseAttributionJson("{\"other\":1}", &out));
}

// ----------------------------------- fig13 end to end (SweepRunner) ----

TEST(AttributionEndToEnd, SweepRunnerWritesSideFilesAndDecisions)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(8);

    const fs::path dir =
        fs::path(testing::TempDir()) / "capart_attr_e2e";
    fs::remove_all(dir);
    fs::create_directories(dir);

    obs::RunLedger ledger((dir / "runs.jsonl").string());
    ASSERT_TRUE(ledger.ok());

    exec::SweepRunnerOptions ro;
    ro.jobs = 1;
    ro.baseSeed = 12345;
    ro.ledger = &ledger;
    ro.benchName = "fig13_dynamic";
    ro.runId = "fig13_dynamic-12345-test";
    ro.attrDir = dir.string();
    exec::SweepRunner runner(ro);

    const exec::ExperimentSpec spec = exec::consolidationSpec(
        "429.mcf", "dedup", exec::policyBit(Policy::Dynamic), 0.03, 15e-6);
    const std::vector<exec::SweepResult> results = runner.run({spec});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(
        results[0].policy[static_cast<int>(Policy::Dynamic)].present);

    // The ledger holds the point (with its side-file pointer) and the
    // partitioner's decisions, all stamped with the run id.
    const obs::RunLedger::LoadResult loaded =
        obs::RunLedger::load(ledger.path());
    EXPECT_EQ(loaded.skipped, 0u);
    const obs::RunRecord *point = nullptr;
    unsigned decisions = 0;
    for (const obs::RunRecord &rec : loaded.records) {
        EXPECT_EQ(rec.run, ro.runId);
        EXPECT_EQ(rec.bench, ro.benchName);
        if (rec.kind == "point")
            point = &rec;
        else if (rec.kind == "decision") {
            ++decisions;
            EXPECT_FALSE(rec.rule.empty());
            EXPECT_EQ(rec.specHash, spec.hash());
        }
    }
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->specHash, spec.hash());
    ASSERT_FALSE(point->attrFile.empty())
        << "the point record must link its attribution side file";
    EXPECT_GE(decisions, 1u)
        << "a dynamic run must ledger at least one decision";

    // The side file exists, parses, and its decisions replay.
    std::ifstream in(point->attrFile);
    ASSERT_TRUE(in.good()) << point->attrFile;
    std::ostringstream text;
    text << in.rdbuf();
    obs::AttributionBatch batch;
    ASSERT_TRUE(obs::parseAttributionJson(text.str(), &batch));
    EXPECT_EQ(batch.specHash, spec.hash());
    EXPECT_EQ(batch.attrFile, point->attrFile);
    EXPECT_GE(batch.samples.size(), 1u)
        << "sampling at period 8 must capture the run";
    EXPECT_GE(batch.journal.size(), 1u);
    expectJournalReplays(batch.journal);

    // The drained batch was deposited, so a dashboard rendered "at
    // exit" sees the point without re-reading the side file.
    dashboard::DashboardData data;
    data.title = "e2e";
    data.batches = obs::timeseries().collect();
    data.points = {*point};
    ASSERT_GE(data.batches.size(), 1u);
    std::ostringstream html;
    dashboard::renderDashboardHtml(html, data);
    EXPECT_NE(html.str().find("data-samples=\""), std::string::npos);
    EXPECT_EQ(
        html.str().find("data-samples=\"0\""), std::string::npos)
        << "an armed run must not render an empty dashboard";

    obs::metrics().reset();
    fs::remove_all(dir);
}

// ---------------------------------------------------- dashboard -------

/** The parsed embedded JSON blob of a rendered dashboard page. */
Json
embeddedBlob(const std::string &html)
{
    const std::string open = "id=\"capart-data\">";
    const std::size_t start = html.find(open);
    EXPECT_NE(start, std::string::npos) << "data blob missing";
    const std::size_t begin = start + open.size();
    const std::size_t end = html.find("</script>", begin);
    EXPECT_NE(end, std::string::npos);
    std::string blob = html.substr(begin, end - begin);
    // Reverse the "</" -> "<\/" script-safety escaping (a legal JSON
    // escape, so honest parsers accept either form).
    std::string::size_type pos = 0;
    while ((pos = blob.find("<\\/", pos)) != std::string::npos)
        blob.replace(pos, 3, "</");
    const std::optional<Json> doc = Json::parse(blob);
    EXPECT_TRUE(doc.has_value()) << "blob is not valid JSON";
    return doc.value_or(Json{});
}

TEST(Dashboard, EmbedsDataBlobAndSampleCount)
{
    dashboard::DashboardData data;
    data.title = "capart test dashboard";
    data.batches = {syntheticBatch()};

    obs::RunRecord p;
    p.kind = "point";
    p.bench = "fig13_dynamic";
    p.run = "fig13_dynamic-12345-test";
    p.specHash = 0x1234;
    p.metrics = {{"fg_slowdown", 1.02}, {"bg_throughput", 3.5e9}};
    data.points = {p};

    EXPECT_EQ(dashboard::sampleTotal(data), 2u);

    std::ostringstream os;
    dashboard::renderDashboardHtml(os, data);
    const std::string html = os.str();

    EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
    EXPECT_NE(html.find("data-samples=\"2\""), std::string::npos)
        << "the sample count is the machine-readable handle CI greps";
    EXPECT_NE(html.find("capart test dashboard"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos)
        << "the page must not reference external resources";
    EXPECT_EQ(html.find("href="), std::string::npos)
        << "the page must not reference external resources";

    const Json doc = embeddedBlob(html);
    EXPECT_EQ(doc.at("title").asStr(), data.title);
    ASSERT_TRUE(doc.at("batches").isArr());
    ASSERT_EQ(doc.at("batches").arr.size(), 1u);
    const Json &batch = doc.at("batches").arr[0];
    EXPECT_EQ(batch.at("label").asStr(), "fg+bg");
    ASSERT_EQ(batch.at("samples").arr.size(), 2u);
    ASSERT_EQ(batch.at("journal").arr.size(), 1u);
    ASSERT_TRUE(doc.at("points").isArr());
    ASSERT_EQ(doc.at("points").arr.size(), 1u);
    EXPECT_EQ(doc.at("points").arr[0].at("bench").asStr(),
              "fig13_dynamic");
}

TEST(Dashboard, RendersDeterministically)
{
    dashboard::DashboardData data;
    data.title = "determinism";
    data.batches = {syntheticBatch()};
    std::ostringstream a, b;
    dashboard::renderDashboardHtml(a, data);
    dashboard::renderDashboardHtml(b, data);
    EXPECT_EQ(a.str(), b.str()) << "the renderer must be golden-diffable";
}

TEST(Dashboard, EscapesScriptClosersInEmbeddedData)
{
    dashboard::DashboardData data;
    data.title = "esc";
    obs::AttributionBatch b = syntheticBatch();
    b.label = "evil</script><b>x";
    data.batches = {std::move(b)};

    std::ostringstream os;
    dashboard::renderDashboardHtml(os, data);
    const std::string html = os.str();
    EXPECT_EQ(html.find("evil</script>"), std::string::npos)
        << "a label must never terminate the data block early";
    // The escaped form round-trips back to the original label.
    const Json doc = embeddedBlob(html);
    EXPECT_EQ(doc.at("batches").arr[0].at("label").asStr(),
              "evil</script><b>x");
}

TEST(Dashboard, EmptyDataRendersZeroSamples)
{
    dashboard::DashboardData data;
    data.title = "empty";
    std::ostringstream os;
    dashboard::renderDashboardHtml(os, data);
    EXPECT_NE(os.str().find("data-samples=\"0\""), std::string::npos)
        << "CI's obs-off proof greps for exactly this";
}

TEST(Dashboard, WriteDashboardFileCollectsAndWrites)
{
    const fs::path dir =
        fs::path(testing::TempDir()) / "capart_dash_write";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = (dir / "dashboard.html").string();

    ASSERT_TRUE(dashboard::writeDashboardFile(path, "write test", {}));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_NE(text.str().find("write test"), std::string::npos);
    EXPECT_NE(text.str().find("data-samples=\""), std::string::npos);

    EXPECT_FALSE(dashboard::writeDashboardFile(
        (dir / "no-such-dir" / "x.html").string(), "t", {}));
    fs::remove_all(dir);
}

} // namespace
} // namespace capart
