/**
 * @file
 * Unit tests for the stats module: aggregates, histograms, tables, and
 * the sliding rate window used for bandwidth accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/fairness.hh"
#include "stats/rate_window.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace capart
{
namespace
{

TEST(RunningStat, BasicAggregates)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(-5.0);  // clamps to bin 0
    h.add(100.0); // clamps to bin 4
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_DOUBLE_EQ(h.binLo(1), 2.0);
}

TEST(Summary, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Summary, WeightedSpeedupDefinition)
{
    // Two apps taking 10 s each sequentially; co-run both finish in
    // 10 s: consolidation doubles throughput.
    EXPECT_DOUBLE_EQ(weightedSpeedup({10.0, 10.0}, {10.0, 10.0}), 2.0);
    // Co-run stretches one app to 20 s: no gain.
    EXPECT_DOUBLE_EQ(weightedSpeedup({10.0, 10.0}, {20.0, 5.0}), 1.0);
}

TEST(Fairness, UnfairnessIsMaxOverMinSlowdown)
{
    // Perfectly fair: everyone slows by the same factor.
    EXPECT_DOUBLE_EQ(unfairness({1.5, 1.5, 1.5}), 1.0);
    // One app at 2x, one at 1.25x: 2 / 1.25 = 1.6.
    EXPECT_DOUBLE_EQ(unfairness({2.0, 1.25}), 1.6);
    // A speedup (slowdown < 1, e.g. less bandwidth contention than the
    // solo baseline had) widens the ratio like any other spread.
    EXPECT_DOUBLE_EQ(unfairness({0.5, 2.0}), 4.0);
    EXPECT_DOUBLE_EQ(unfairness({3.0}), 1.0);
}

TEST(Fairness, SystemThroughputSumsSpeedups)
{
    // Every app at solo speed: STP = N.
    EXPECT_DOUBLE_EQ(systemThroughput({1.0, 1.0, 1.0}), 3.0);
    // Both apps halved: the machine does one app's worth of work.
    EXPECT_DOUBLE_EQ(systemThroughput({2.0, 2.0}), 1.0);
    // 1/2 + 1/4 = 0.75.
    EXPECT_DOUBLE_EQ(systemThroughput({2.0, 4.0}), 0.75);
}

TEST(Table, AlignedAndCsvOutput)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"with,comma", "2"});
    EXPECT_EQ(t.rows(), 2u);

    std::ostringstream plain;
    t.print(plain);
    EXPECT_NE(plain.str().find("name"), std::string::npos);
    EXPECT_NE(plain.str().find("----"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_NE(csv.str().find("\"with,comma\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(RateWindow, SteadyRate)
{
    RateWindow w(1e-3, 4); // 4 ms window
    // 1000 units per ms for 8 ms.
    for (int i = 0; i < 8; ++i)
        w.record(i * 1e-3 + 0.5e-3, 1000);
    // Steady state: 1000 units/ms = 1e6 units/s (queried within the
    // last filled bucket; an empty fresh bucket biases the estimate).
    EXPECT_NEAR(w.rate(7.9e-3), 1e6, 1e5);
    EXPECT_EQ(w.total(), 8000u);
}

TEST(RateWindow, OldTrafficExpires)
{
    RateWindow w(1e-3, 4);
    w.record(0.5e-3, 4000);
    EXPECT_GT(w.rate(1e-3), 0.0);
    // 10 ms later the burst has left the window entirely.
    EXPECT_DOUBLE_EQ(w.rate(10e-3), 0.0);
    EXPECT_EQ(w.total(), 4000u);
}

TEST(RateWindow, SpanMatchesConfig)
{
    RateWindow w(25e-6, 8);
    EXPECT_DOUBLE_EQ(w.span(), 200e-6);
}

TEST(RateWindow, BucketWraparoundReplacesExpiredTraffic)
{
    RateWindow w(1e-3, 4);
    // Epoch 0 lands in slot 0; epoch 4 wraps into the same slot. The
    // old burst must be replaced, not accumulated.
    w.record(0.5e-3, 1000);
    w.record(4.5e-3, 2000);
    // Live window at epoch 4 covers epochs 1..4: only the new burst.
    EXPECT_NEAR(w.rate(4.9e-3), 2000.0 / 4e-3, 1.0);
    EXPECT_EQ(w.total(), 3000u);
    EXPECT_EQ(w.staleDrops(), 0u);

    // Several laps later the slot keeps being reused cleanly.
    w.record(8.5e-3, 4000);  // slot 0 again (epoch 8)
    w.record(12.5e-3, 8000); // slot 0 again (epoch 12)
    EXPECT_NEAR(w.rate(12.9e-3), 8000.0 / 4e-3, 1.0);
}

TEST(RateWindow, OutOfOrderWithinWindowFoldsIn)
{
    // Hardware threads post traffic at their own local times, so mildly
    // out-of-order samples are normal; anything still inside the window
    // must land in its bucket.
    RateWindow w(1e-3, 4);
    w.record(3.5e-3, 1000); // epoch 3
    w.record(1.5e-3, 500);  // epoch 1: older, but in the window
    EXPECT_EQ(w.staleDrops(), 0u);
    EXPECT_NEAR(w.rate(3.9e-3), 1500.0 / 4e-3, 1.0);
    EXPECT_EQ(w.total(), 1500u);
}

TEST(RateWindow, StaleOutOfOrderSampleIsDroppedNotResurrected)
{
    RateWindow w(1e-3, 4);
    w.record(9.5e-3, 1000); // epoch 9 -> slot 1
    w.record(8.5e-3, 1000); // epoch 8 -> slot 0 (in window)
    // Epoch 4 also maps to slot 0. Folding it in would clobber the
    // live epoch-8 bucket with expired traffic; it must be dropped.
    w.record(4.5e-3, 7777);
    EXPECT_EQ(w.staleDrops(), 1u);
    EXPECT_NEAR(w.rate(9.9e-3), 2000.0 / 4e-3, 1.0)
        << "stale sample corrupted a live bucket";
    EXPECT_EQ(w.total(), 9777u) << "total still counts dropped samples";

    // A stale sample must not rewind the window either: current
    // traffic keeps accumulating normally afterwards.
    w.record(9.7e-3, 500);
    EXPECT_NEAR(w.rate(9.9e-3), 2500.0 / 4e-3, 1.0);
}

TEST(Summary, SignTestKnownValues)
{
    // No untied pairs: nothing to test, p = 1.
    EXPECT_DOUBLE_EQ(signTestPValue(0, 0), 1.0);
    // All-ties-broken-one-way cases are exact powers of two.
    EXPECT_DOUBLE_EQ(signTestPValue(1, 0), 0.5);
    EXPECT_DOUBLE_EQ(signTestPValue(5, 0), 1.0 / 32.0);
    EXPECT_DOUBLE_EQ(signTestPValue(6, 0), 1.0 / 64.0)
        << "six unanimous pairs is the first p <= 0.05";
    // P[X >= 0] is certain; P[X >= 3 of 6] = 42/64.
    EXPECT_DOUBLE_EQ(signTestPValue(0, 4), 1.0);
    EXPECT_NEAR(signTestPValue(3, 3), 42.0 / 64.0, 1e-12);
    // 8-of-10: C(10,8)+C(10,9)+C(10,10) = 56 of 1024.
    EXPECT_NEAR(signTestPValue(8, 2), 56.0 / 1024.0, 1e-12);
}

TEST(Summary, SignTestIsMonotoneAndStableAtScale)
{
    // More wins at fixed n must never raise the p-value.
    double prev = 1.0;
    for (unsigned wins = 0; wins <= 20; ++wins) {
        const double p = signTestPValue(wins, 20 - wins);
        EXPECT_LE(p, prev + 1e-15) << "wins=" << wins;
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
    // Large n exercises the log-space path: C(500, 250)-scale terms
    // overflow doubles if summed directly.
    const double p = signTestPValue(300, 200);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1e-4) << "300/500 worse is overwhelmingly significant";
    // 2^-500 ~= 3e-151: tiny but representable; the log-space sum must
    // deliver it instead of underflowing partway to zero or NaN.
    EXPECT_NEAR(signTestPValue(500, 0), std::exp2(-500.0), 1e-160);
}

TEST(Table, CsvQuotesCommasOnly)
{
    Table t({"name", "value"});
    t.addRow({"plain", "1"});
    t.addRow({"a,b", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\nplain,1\n\"a,b\",2\n");
}

TEST(Table, EmptyTableStillPrintsHeader)
{
    Table t({"col"});
    EXPECT_EQ(t.rows(), 0u);
    std::ostringstream aligned;
    t.print(aligned);
    EXPECT_NE(aligned.str().find("col"), std::string::npos);
    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "col\n");
}

TEST(Summary, StddevAndMaxOf)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic population-stddev set
    EXPECT_DOUBLE_EQ(maxOf({1.0, 3.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(maxOf({}), 0.0);
}

} // namespace
} // namespace capart
