/**
 * @file
 * Tests for the clustering module: normalization, single-linkage
 * agglomeration, dendrogram cuts, and centroid representatives (§3.5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/characterization.hh"
#include "analysis/clustering.hh"

namespace capart
{
namespace
{

FeatureVector
fv(std::string name, std::vector<double> values)
{
    return FeatureVector{std::move(name), std::move(values)};
}

TEST(Normalize, MinMaxToUnitInterval)
{
    std::vector<FeatureVector> fs = {
        fv("a", {0.0, 10.0}),
        fv("b", {5.0, 20.0}),
        fv("c", {10.0, 30.0}),
    };
    normalizeFeatures(fs);
    EXPECT_DOUBLE_EQ(fs[0].values[0], 0.0);
    EXPECT_DOUBLE_EQ(fs[1].values[0], 0.5);
    EXPECT_DOUBLE_EQ(fs[2].values[0], 1.0);
    EXPECT_DOUBLE_EQ(fs[0].values[1], 0.0);
    EXPECT_DOUBLE_EQ(fs[2].values[1], 1.0);
}

TEST(Normalize, ConstantDimensionBecomesZero)
{
    std::vector<FeatureVector> fs = {fv("a", {7.0}), fv("b", {7.0})};
    normalizeFeatures(fs);
    EXPECT_DOUBLE_EQ(fs[0].values[0], 0.0);
    EXPECT_DOUBLE_EQ(fs[1].values[0], 0.0);
}

TEST(Euclidean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(euclidean(fv("a", {0, 0}), fv("b", {3, 4})), 5.0);
    EXPECT_DOUBLE_EQ(euclidean(fv("a", {1}), fv("b", {1})), 0.0);
}

TEST(SingleLinkage, TwoObviousClusters)
{
    // Two tight groups far apart.
    std::vector<FeatureVector> fs = {
        fv("a1", {0.0, 0.0}), fv("a2", {0.1, 0.0}), fv("a3", {0.0, 0.1}),
        fv("b1", {10.0, 10.0}), fv("b2", {10.1, 10.0}),
    };
    const Dendrogram d = singleLinkage(fs);
    EXPECT_EQ(d.numLeaves, 5u);
    EXPECT_EQ(d.merges.size(), 4u);
    // The last (largest-distance) merge joins the two groups.
    EXPECT_GT(d.merges.back().distance, 5.0);
    EXPECT_EQ(d.merges.back().size, 5u);

    const auto labels = clustersAtDistance(d, 1.0);
    EXPECT_EQ(numClusters(labels), 2u);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[0], labels[2]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_NE(labels[0], labels[3]);
}

TEST(SingleLinkage, ChainingBehaviour)
{
    // Single linkage famously chains: a line of points each 1 apart
    // forms ONE cluster at cutoff 1.5 even though the ends are far.
    std::vector<FeatureVector> fs;
    for (int i = 0; i < 6; ++i)
        fs.push_back(fv("p" + std::to_string(i),
                        {static_cast<double>(i), 0.0}));
    const Dendrogram d = singleLinkage(fs);
    const auto labels = clustersAtDistance(d, 1.5);
    EXPECT_EQ(numClusters(labels), 1u);
}

TEST(SingleLinkage, CutAboveAllMergesIsOneCluster)
{
    std::vector<FeatureVector> fs = {fv("a", {0.0}), fv("b", {1.0}),
                                     fv("c", {5.0})};
    const Dendrogram d = singleLinkage(fs);
    EXPECT_EQ(numClusters(clustersAtDistance(d, 100.0)), 1u);
    EXPECT_EQ(numClusters(clustersAtDistance(d, 0.5)), 3u);
}

TEST(SingleLinkage, MergeDistancesNonDecreasing)
{
    std::vector<FeatureVector> fs;
    // A spread of points; single linkage merge distances must be
    // non-decreasing (monotone dendrogram).
    const double xs[] = {0.0, 0.3, 1.1, 2.0, 5.0, 5.2, 9.0};
    for (double x : xs)
        fs.push_back(fv("p", {x}));
    const Dendrogram d = singleLinkage(fs);
    for (std::size_t i = 1; i < d.merges.size(); ++i)
        EXPECT_GE(d.merges[i].distance, d.merges[i - 1].distance);
}

TEST(SingleLinkage, DegenerateInputs)
{
    std::vector<FeatureVector> none;
    EXPECT_EQ(singleLinkage(none).merges.size(), 0u);
    std::vector<FeatureVector> one = {fv("a", {1.0})};
    const Dendrogram d = singleLinkage(one);
    EXPECT_EQ(d.numLeaves, 1u);
    EXPECT_EQ(numClusters(clustersAtDistance(d, 1.0)), 1u);
}

TEST(Centroid, PicksMostCentralMember)
{
    std::vector<FeatureVector> fs = {
        fv("left", {0.0}), fv("mid", {1.0}), fv("right", {2.0}),
        fv("far", {50.0}),
    };
    const std::vector<unsigned> labels = {0, 0, 0, 1};
    EXPECT_EQ(centroidRepresentative(fs, labels, 0), 1u);
    EXPECT_EQ(centroidRepresentative(fs, labels, 1), 3u);
}

TEST(Characterization, NineteenFeatures)
{
    AppCharacterization c;
    c.name = "x";
    c.threadScaling.assign(7, 1.0);
    c.llcSensitivity.assign(10, 1.0);
    c.prefetchSensitivity = 0.9;
    c.bandwidthSensitivity = 1.4;
    const FeatureVector f = toFeatureVector(c);
    EXPECT_EQ(f.values.size(), kNumFeatures);
    EXPECT_EQ(f.values.size(), 19u);
    EXPECT_DOUBLE_EQ(f.values[17], 0.9);
    EXPECT_DOUBLE_EQ(f.values[18], 1.4);
}

TEST(Clustering, SeparatesScalableFromSerialProfiles)
{
    // Synthetic characterizations: scalable+streaming vs serial+cachey.
    std::vector<FeatureVector> fs;
    for (int k = 0; k < 3; ++k) {
        AppCharacterization c;
        c.name = "scalable" + std::to_string(k);
        c.threadScaling = {0.55, 0.4, 0.3, 0.25, 0.22, 0.2, 0.18};
        c.llcSensitivity.assign(10, 1.0);
        c.prefetchSensitivity = 0.8;
        c.bandwidthSensitivity = 1.5;
        fs.push_back(toFeatureVector(c));
    }
    for (int k = 0; k < 3; ++k) {
        AppCharacterization c;
        c.name = "serial" + std::to_string(k);
        c.threadScaling.assign(7, 1.0);
        c.llcSensitivity = {3.0, 2.5, 2.0, 1.7, 1.5, 1.35, 1.2,
                            1.1, 1.05, 1.0};
        c.prefetchSensitivity = 1.0;
        c.bandwidthSensitivity = 1.0;
        fs.push_back(toFeatureVector(c));
    }
    normalizeFeatures(fs);
    const Dendrogram d = singleLinkage(fs);
    const auto labels = clustersAtDistance(d, 0.9);
    EXPECT_EQ(numClusters(labels), 2u);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_NE(labels[0], labels[3]);
}

} // namespace
} // namespace capart
