/**
 * @file
 * Tests for the simulated machine: launch/pinning semantics, run
 * accounting, determinism, and the first-order contention properties
 * the multiprogram experiments rely on.
 */

#include <gtest/gtest.h>

#include "core/napp.hh"
#include "core/static_policies.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

constexpr double kTestScale = 0.03;

TEST(System, SoloRunCompletes)
{
    SoloOptions o;
    o.threads = 4;
    o.scale = kTestScale;
    const SoloResult r = runSolo(Catalog::byName("ferret"), o);
    EXPECT_TRUE(r.app.completed);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.time, 0.0);
    EXPECT_GT(r.app.retired, 0u);
    EXPECT_GT(r.socketEnergy, 0.0);
    EXPECT_GT(r.wallEnergy, r.socketEnergy);
}

TEST(System, DeterministicAcrossRuns)
{
    SoloOptions o;
    o.threads = 4;
    o.scale = kTestScale;
    const SoloResult a = runSolo(Catalog::byName("canneal"), o);
    const SoloResult b = runSolo(Catalog::byName("canneal"), o);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.app.llcMisses, b.app.llcMisses);
    EXPECT_DOUBLE_EQ(a.socketEnergy, b.socketEnergy);
}

TEST(System, SeedChangesDetails)
{
    SoloOptions a;
    a.threads = 4;
    a.scale = kTestScale;
    SoloOptions b = a;
    b.system.seed = 999;
    const SoloResult ra = runSolo(Catalog::byName("canneal"), a);
    const SoloResult rb = runSolo(Catalog::byName("canneal"), b);
    EXPECT_NE(ra.app.llcMisses, rb.app.llcMisses);
    // ... but the behaviour is statistically stable.
    EXPECT_NEAR(rb.time / ra.time, 1.0, 0.1);
}

TEST(System, RejectsDoubleHtAssignment)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addApp(Catalog::byName("ferret").scaled(kTestScale), {0, 1});
    EXPECT_DEATH(
        sys.addApp(Catalog::byName("dedup").scaled(kTestScale), {1, 2}),
        "assert");
}

TEST(System, MoreWaysNeverHurtCacheBoundApp)
{
    // Monotonicity: fop's runtime must not increase with allocation
    // (ignoring the pathological 1-way configuration paper also skips).
    double prev = 1e30;
    for (unsigned ways : {2u, 4u, 8u, 12u}) {
        SoloOptions o;
        o.threads = 4;
        o.ways = ways;
        o.scale = kTestScale;
        const SoloResult r = runSolo(Catalog::byName("fop"), o);
        EXPECT_LT(r.time, prev * 1.02) << "ways=" << ways;
        prev = r.time;
    }
}

TEST(System, HalfMbDirectMappedIsPathological)
{
    // §3.2: 0.5 MB direct-mapped is always detrimental.
    SoloOptions one;
    one.threads = 4;
    one.ways = 1;
    one.scale = kTestScale;
    SoloOptions four = one;
    four.ways = 4;
    const SoloResult r1 = runSolo(Catalog::byName("tomcat"), one);
    const SoloResult r4 = runSolo(Catalog::byName("tomcat"), four);
    EXPECT_GT(r1.time, r4.time * 1.02);
}

TEST(System, ThreadScalingSpeedsUpParallelApp)
{
    SoloOptions o1;
    o1.threads = 1;
    o1.scale = kTestScale;
    SoloOptions o8 = o1;
    o8.threads = 8;
    const SoloResult t1 = runSolo(Catalog::byName("blackscholes"), o1);
    const SoloResult t8 = runSolo(Catalog::byName("blackscholes"), o8);
    EXPECT_GT(t1.time / t8.time, 3.0);
}

TEST(System, SingleThreadedAppIgnoresExtraThreads)
{
    SoloOptions o1;
    o1.threads = 1;
    o1.scale = kTestScale;
    SoloOptions o8 = o1;
    o8.threads = 8;
    const SoloResult t1 = runSolo(Catalog::byName("453.povray"), o1);
    const SoloResult t8 = runSolo(Catalog::byName("453.povray"), o8);
    EXPECT_NEAR(t8.time / t1.time, 1.0, 0.05);
}

TEST(System, SmtPairSlowerThanTwoCores)
{
    // 2 threads on one core (SMT) vs 2 threads on two cores.
    const AppParams app =
        Catalog::byName("blackscholes").scaled(kTestScale);
    SystemConfig cfg;

    System smt(cfg);
    const AppId a1 = smt.addApp(app, {0, 1}); // both HTs of core 0
    const Seconds t_smt = smt.run().app(a1).completionTime;

    System spread(cfg);
    const AppId a2 = spread.addApp(app, {0, 2}); // one HT per core
    const Seconds t_spread = spread.run().app(a2).completionTime;

    EXPECT_GT(t_smt, t_spread * 1.2);
}

TEST(System, CoRunSlowsSensitiveForeground)
{
    const AppParams &fg = Catalog::byName("canneal");
    const AppParams &bg = Catalog::byName("streamcluster");
    SoloOptions so;
    so.threads = 4;
    so.scale = kTestScale;
    const SoloResult solo = runSolo(fg, so);

    PairOptions po;
    po.scale = kTestScale;
    const PairResult pair = runPair(fg, bg, po);
    EXPECT_GT(pair.fgTime, solo.time * 1.1)
        << "cache-sensitive fg must be hurt by a streaming bg";
    EXPECT_GT(pair.bgThroughput, 0.0);
}

TEST(System, InsensitivePairBarelyInterferes)
{
    const AppParams &fg = Catalog::byName("swaptions");
    const AppParams &bg = Catalog::byName("453.povray");
    SoloOptions so;
    so.threads = 4;
    so.scale = kTestScale;
    const SoloResult solo = runSolo(fg, so);
    PairOptions po;
    po.scale = kTestScale;
    const PairResult pair = runPair(fg, bg, po);
    EXPECT_LT(pair.fgTime, solo.time * 1.03);
}

TEST(System, PartitioningProtectsForeground)
{
    // A cache-hungry foreground next to a streaming background: giving
    // the stream a small partition shields the foreground (§5.2).
    const AppParams &fg = Catalog::byName("471.omnetpp");
    const AppParams &bg = Catalog::byName("streamcluster");
    PairOptions shared;
    shared.scale = kTestScale;
    const PairResult sh = runPair(fg, bg, shared);

    PairOptions biased = shared;
    const SplitMasks m = splitWays(6, 12);
    biased.fgMask = m.fg;
    biased.bgMask = m.bg;
    const PairResult bi = runPair(fg, bg, biased);
    EXPECT_LT(bi.fgTime, sh.fgTime)
        << "a 6/6 split must shield omnetpp from the stream";
}

TEST(System, ContinuousBackgroundRestarts)
{
    const AppParams &fg = Catalog::byName("ferret");
    const AppParams &bg = Catalog::byName("swaptions");
    PairOptions po;
    po.scale = 0.05;
    // Make the background much shorter so it must loop.
    const PairResult r = runPair(fg, bg.scaled(0.02), po);
    EXPECT_GT(r.bg.iterations, 1u);
    EXPECT_TRUE(r.fg.completed);
}

TEST(System, RunWithOnlyContinuousAppsIsRejected)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.addApp(Catalog::byName("ferret").scaled(kTestScale), {0, 1},
               /*continuous=*/true);
    EXPECT_EXIT(sys.run(), ::testing::ExitedWithCode(1),
                "no non-continuous");
}

TEST(System, PerfMonitorProducesWindows)
{
    SystemConfig cfg;
    cfg.perfWindow = 10e-6;
    System sys(cfg);
    const AppId id =
        sys.addAppOnCores(Catalog::byName("429.mcf").scaled(0.05), 0, 2);
    sys.run();
    EXPECT_GT(sys.monitor(id).windowCount(), 10u);
}

TEST(System, EnergyScalesWithWork)
{
    SoloOptions small;
    small.threads = 4;
    small.scale = 0.02;
    SoloOptions big = small;
    big.scale = 0.06;
    const SoloResult rs = runSolo(Catalog::byName("ferret"), small);
    const SoloResult rb = runSolo(Catalog::byName("ferret"), big);
    // Sub-linear at small scales: the short run pays cold-start misses
    // over a larger fraction of its life.
    EXPECT_NEAR(rb.socketEnergy / rs.socketEnergy, 3.0, 0.6);
}

TEST(System, UncachedHogBypassesLlc)
{
    SoloOptions o;
    o.threads = 1;
    o.scale = kTestScale;
    const SoloResult r = runSolo(Catalog::byName("stream_uncached"), o);
    EXPECT_EQ(r.app.llcAccesses, 0u);
    EXPECT_GT(r.app.uncachedBytes, 0u);
}

TEST(System, WayMaskQueryReflectsSet)
{
    SystemConfig cfg;
    System sys(cfg);
    const AppId id =
        sys.addAppOnCores(Catalog::byName("ferret").scaled(0.01), 0, 2);
    EXPECT_EQ(sys.wayMask(id), WayMask::all(12));
    sys.setWayMask(id, WayMask::range(0, 5));
    EXPECT_EQ(sys.wayMask(id), WayMask::range(0, 5));
}

TEST(Experiment, SplitWaysDisjointAndComplete)
{
    for (unsigned fg = 1; fg < 12; ++fg) {
        const SplitMasks m = splitWays(fg, 12);
        EXPECT_EQ(m.fg.count(), fg);
        EXPECT_EQ(m.bg.count(), 12 - fg);
        EXPECT_EQ((m.fg & m.bg).count(), 0u);
        EXPECT_EQ((m.fg | m.bg), WayMask::all(12));
    }
}

// ---------------------------------------------------------------------
// N = 2 differential: the N-app path must reproduce the legacy
// foreground/background pair path bit for bit for every ported policy.
// Same machine, same pinning, same mask-install sequence — if any of
// those drifts, these comparisons break before any bench notices.
// ---------------------------------------------------------------------

void
expectBitIdentical(const PairResult &legacy, const NAppRunResult &napp,
                   const char *what)
{
    ASSERT_EQ(napp.apps.size(), 2u) << what;
    const AppRunStats *legacy_apps[] = {&legacy.fg, &legacy.bg};
    for (int i = 0; i < 2; ++i) {
        const AppRunStats &a = *legacy_apps[i];
        const AppRunStats &b = napp.apps[i];
        EXPECT_EQ(a.completed, b.completed) << what << " app " << i;
        EXPECT_EQ(a.iterations, b.iterations) << what << " app " << i;
        EXPECT_EQ(a.retired, b.retired) << what << " app " << i;
        EXPECT_EQ(a.cycles, b.cycles) << what << " app " << i;
        EXPECT_EQ(a.llcAccesses, b.llcAccesses) << what << " app " << i;
        EXPECT_EQ(a.llcMisses, b.llcMisses) << what << " app " << i;
        EXPECT_EQ(a.dramReads, b.dramReads) << what << " app " << i;
        EXPECT_EQ(a.dramWrites, b.dramWrites) << what << " app " << i;
        EXPECT_DOUBLE_EQ(a.completionTime, b.completionTime)
            << what << " app " << i;
        EXPECT_DOUBLE_EQ(a.throughputIps, b.throughputIps)
            << what << " app " << i;
    }
    EXPECT_DOUBLE_EQ(legacy.fgTime, napp.fgTime) << what;
    EXPECT_DOUBLE_EQ(legacy.socketEnergy, napp.socketEnergy) << what;
    EXPECT_DOUBLE_EQ(legacy.wallEnergy, napp.wallEnergy) << what;
    EXPECT_EQ(legacy.timedOut, napp.timedOut) << what;
}

std::vector<NAppMember>
pairAsMembers(const AppParams &fg, const AppParams &bg)
{
    NAppMember m0;
    m0.params = fg;
    m0.threads = 4;
    m0.continuous = false;
    NAppMember m1;
    m1.params = bg;
    m1.threads = 4;
    m1.continuous = true;
    return {m0, m1};
}

TEST(NAppDifferential, SharedMatchesLegacyPair)
{
    const AppParams &fg = Catalog::byName("471.omnetpp");
    const AppParams &bg = Catalog::byName("streamcluster");
    PairOptions po;
    po.scale = kTestScale;
    const PairResult legacy = runPair(fg, bg, po);

    NAppOptions no;
    no.scale = kTestScale;
    const NAppRunResult napp =
        runNApp(pairAsMembers(fg, bg), NPolicy::Shared, no);
    expectBitIdentical(legacy, napp, "shared");
}

TEST(NAppDifferential, FairMatchesLegacyPair)
{
    const AppParams &fg = Catalog::byName("canneal");
    const AppParams &bg = Catalog::byName("470.lbm");
    PairOptions po;
    po.scale = kTestScale;
    const SplitMasks m = policyMasks(Policy::Fair, 12);
    po.fgMask = m.fg;
    po.bgMask = m.bg;
    const PairResult legacy = runPair(fg, bg, po);

    NAppOptions no;
    no.scale = kTestScale;
    const NAppRunResult napp =
        runNApp(pairAsMembers(fg, bg), NPolicy::Fair, no);
    expectBitIdentical(legacy, napp, "fair");
}

TEST(NAppDifferential, BiasedMatchesLegacyPairAtEveryWidth)
{
    const AppParams &fg = Catalog::byName("429.mcf");
    const AppParams &bg = Catalog::byName("462.libquantum");
    for (const unsigned fg_ways : {3u, 8u}) {
        PairOptions po;
        po.scale = kTestScale;
        const SplitMasks m = splitWays(fg_ways, 12);
        po.fgMask = m.fg;
        po.bgMask = m.bg;
        const PairResult legacy = runPair(fg, bg, po);

        NAppOptions no;
        no.scale = kTestScale;
        no.biasedFgWays = fg_ways;
        const NAppRunResult napp =
            runNApp(pairAsMembers(fg, bg), NPolicy::Biased, no);
        expectBitIdentical(legacy, napp, "biased");
    }
}

TEST(NAppDifferential, DynamicMatchesLegacyPair)
{
    const AppParams &fg = Catalog::byName("471.omnetpp");
    const AppParams &bg = Catalog::byName("streamcluster");

    PairOptions po;
    po.scale = kTestScale;
    const SplitMasks m = policyMasks(Policy::Dynamic, 12);
    po.fgMask = m.fg;
    po.bgMask = m.bg;
    DynamicPartitionerConfig dc;
    DynamicPartitioner ctrl(AppId{0}, std::vector<AppId>{1}, dc);
    po.controller = &ctrl;
    const PairResult legacy = runPair(fg, bg, po);

    NAppOptions no;
    no.scale = kTestScale;
    // autoScaleDynamic resolves maxFgWays to 12 - 1 = 11 on the stock
    // machine — the same ceiling the legacy config hard-codes, so the
    // two controllers walk identical trajectories.
    const NAppRunResult napp =
        runNApp(pairAsMembers(fg, bg), NPolicy::Dynamic, no);
    expectBitIdentical(legacy, napp, "dynamic");
    EXPECT_EQ(ctrl.reallocations(), napp.remasks);
}

} // namespace
} // namespace capart
