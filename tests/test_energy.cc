/**
 * @file
 * Unit tests for the energy model and the quantized meters mirroring
 * RAPL (2^-16 s updates) and the 1 Hz wall meter (§2.2).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "energy/meters.hh"

namespace capart
{
namespace
{

TEST(EnergyModel, IdleSocketIsStaticOnly)
{
    EnergyModel e;
    EXPECT_DOUBLE_EQ(e.socketEnergy(2.0), e.config().socketIdle * 2.0);
}

TEST(EnergyModel, BusyCoreAddsActivePower)
{
    EnergyConfig cfg;
    EnergyModel e(cfg);
    e.addBusy(1.0, false);
    EXPECT_DOUBLE_EQ(e.socketEnergy(1.0),
                     cfg.socketIdle + cfg.coreActive);
}

TEST(EnergyModel, SmtPairSplitsCorePlusHtExtra)
{
    EnergyConfig cfg;
    EnergyModel e(cfg);
    // Both hyperthreads busy for 1 s: together they burn
    // coreActive + htExtra, not 2x coreActive.
    e.addBusy(1.0, true);
    e.addBusy(1.0, true);
    EXPECT_DOUBLE_EQ(e.socketEnergy(1.0),
                     cfg.socketIdle + cfg.coreActive + cfg.htExtra);
}

TEST(EnergyModel, LlcAndDramEvents)
{
    EnergyConfig cfg;
    EnergyModel e(cfg);
    e.addLlcAccesses(1000);
    e.addDramLines(10);
    e.addDramBytes(640); // 10 more lines' worth
    EXPECT_DOUBLE_EQ(e.socketEnergy(0.0), cfg.llcAccessEnergy * 1000);
    // DRAM energy is wall-only.
    EXPECT_DOUBLE_EQ(e.wallEnergy(0.0) - e.socketEnergy(0.0),
                     cfg.dramLineEnergy * 20);
}

TEST(EnergyModel, WallIncludesRestOfSystem)
{
    EnergyConfig cfg;
    EnergyModel e(cfg);
    const Joules wall = e.wallEnergy(10.0);
    const Joules socket = e.socketEnergy(10.0);
    EXPECT_DOUBLE_EQ(wall - socket,
                     (cfg.dramBackground + cfg.wallRest) * 10.0);
}

TEST(EnergyModel, RaceToHaltArithmetic)
{
    // The §4 scenario: finishing in half the time at higher active
    // power still wins on energy because static power dominates.
    EnergyConfig cfg;
    EnergyModel slow(cfg);
    slow.addBusy(10.0, false); // one core, 10 s
    EnergyModel fast(cfg);
    for (int ht = 0; ht < 8; ++ht)
        fast.addBusy(2.0, true); // whole machine, 2 s
    EXPECT_LT(fast.wallEnergy(2.0), slow.wallEnergy(10.0));
}

TEST(QuantizedCounter, RaplGranularity)
{
    QuantizedEnergyCounter rapl = QuantizedEnergyCounter::rapl();
    EXPECT_DOUBLE_EQ(rapl.interval(), 1.0 / 65536.0);

    // Feed a linear energy ramp; readings step at update boundaries.
    rapl.update(0.0, 0.0);
    EXPECT_DOUBLE_EQ(rapl.read(), 0.0);
    rapl.update(0.4 / 65536.0, 0.4);
    EXPECT_DOUBLE_EQ(rapl.read(), 0.0) << "no boundary crossed yet";
    rapl.update(1.1 / 65536.0, 1.1);
    EXPECT_DOUBLE_EQ(rapl.read(), 0.4) << "latched at the boundary";
}

TEST(QuantizedCounter, WallMeterOneSecond)
{
    QuantizedEnergyCounter wall = QuantizedEnergyCounter::wallMeter();
    wall.update(0.0, 0.0);
    wall.update(0.9, 45.0);
    EXPECT_DOUBLE_EQ(wall.read(), 0.0);
    wall.update(1.5, 75.0);
    EXPECT_DOUBLE_EQ(wall.read(), 45.0);
    wall.update(2.5, 125.0);
    EXPECT_DOUBLE_EQ(wall.read(), 75.0);
}

TEST(PowerTrace, DerivesPowerFromEnergySamples)
{
    PowerTrace trace;
    trace.sample(0.0, 0.0);
    trace.sample(1.0, 50.0);
    trace.sample(2.0, 150.0);
    ASSERT_EQ(trace.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(trace.samples()[0].power, 50.0);
    EXPECT_DOUBLE_EQ(trace.samples()[1].power, 100.0);
}

TEST(PowerTrace, IgnoresNonAdvancingSamples)
{
    PowerTrace trace;
    trace.sample(1.0, 10.0);
    trace.sample(1.0, 20.0);
    EXPECT_TRUE(trace.samples().empty());
}

} // namespace
} // namespace capart
