/**
 * @file
 * Tests for N-app policy observability — the PR 5 attribution triad
 * generalized to N owners and the five NPolicy allocators:
 *
 *  1. Replay: every `npartition_decision` record carries the complete
 *     inputs of the Partitioner::decide it journaled (observations,
 *     miss curves, LFOC bounce accumulators, policy configuration),
 *     so `decideNPartition(inputsFromRecord) == recordedMasks` holds
 *     for all five policies — including after a JSON round trip
 *     through the run ledger.
 *  2. Conservation at N: the AttributionSampler's per-owner buckets
 *     still partition the machine totals when N apps own the LLC —
 *     occupancy never exceeds the allocated way count, the five stall
 *     buckets partition cycles exactly, attributed energy reaches the
 *     model totals within 1e-9 relative.
 *  3. Zero cost: arming sampling + journaling on an NAppStudy changes
 *     no result bit (the journal only *reads* the LFOC bounce state
 *     through accessors; a second decide() would perturb it).
 *
 * The end-to-end test drives a five-policy N-app spec through a
 * SweepRunner twice and checks every promised artifact: side files
 * with `napp_run` segmentation markers, ledgered decision records for
 * every policy, replay from the ledger, and a byte-deterministic
 * dashboard.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lfoc.hh"
#include "core/napp.hh"
#include "core/npartition_journal.hh"
#include "core/partitioner.hh"
#include "core/ucp.hh"
#include "dashboard/dashboard.hh"
#include "exec/sweep_runner.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

namespace fs = std::filesystem;

#define CAPART_REQUIRE_OBS_COMPILED_IN()                                    \
    do {                                                                    \
        if (!obs::kCompiledIn)                                              \
            GTEST_SKIP() << "observability compiled out (CAPART_OBS=OFF)";  \
    } while (0)

/** Arms attribution recording for one test (see test_attribution.cc). */
struct SamplingGuard
{
    explicit SamplingGuard(std::uint64_t period)
    {
        obs::setEnabled(true);
        obs::timeseries().clear();
        obs::timeseries().setPeriod(period);
    }

    ~SamplingGuard()
    {
        obs::timeseries().setPeriod(0);
        obs::timeseries().clear();
        obs::setEnabled(false);
    }
};

/** |a - b| within 1e-9 relative (FP accumulation-order slack). */
void
expectNearRelative(double a, double b)
{
    const double tol = 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
    EXPECT_NEAR(a, b, tol);
}

/** Synthetic observations with convex, app-distinct miss curves. */
std::vector<AppObservation>
syntheticObservations(std::size_t n, unsigned total_ways)
{
    std::vector<AppObservation> apps(n);
    for (std::size_t i = 0; i < n; ++i) {
        AppObservation &a = apps[i];
        a.id = static_cast<AppId>(i);
        a.latencySensitive = i == 0;
        // App 0 is light (low curve floor); the rest are heavy with a
        // steep-enough curve to classify as LFOC-sensitive, each with
        // a distinct decay so UCP's lookahead has real choices and the
        // LFOC surplus shares come out fractional (which is what makes
        // the bounce accumulators carry state between windows).
        a.mpki = i == 0 ? 2.0 : 20.0 + 15.0 * static_cast<double>(i);
        a.apki = 20.0 + static_cast<double>(i);
        a.ipc = 1.0 / (1.0 + static_cast<double>(i));
        a.missCurve.resize(total_ways + 1);
        const double decay =
            i == 0 ? 0.5 : 0.04 + 0.02 * static_cast<double>(i);
        for (unsigned w = 0; w <= total_ways; ++w)
            a.missCurve[w] =
                a.mpki / (1.0 + decay * static_cast<double>(w));
    }
    return apps;
}

/** The ledger encoding of a journal entry, as sweep_runner writes it. */
obs::RunRecord
entryAsRecord(const obs::JournalEntry &e)
{
    obs::RunRecord rec;
    rec.kind = e.kind;
    rec.bench = "napp_obs_test";
    rec.run = "napp_obs_test-1-run";
    rec.specHash = 0x5eedf00dULL;
    rec.seed = 1;
    rec.rule = e.rule;
    rec.metrics.emplace_back("t_us", e.tUs);
    for (const auto &field : e.fields)
        rec.metrics.push_back(field);
    return rec;
}

/** Reverse of entryAsRecord: what a replay tool reads back. */
obs::JournalEntry
entryFromRecord(const obs::RunRecord &rec)
{
    obs::JournalEntry e;
    e.kind = rec.kind;
    e.rule = rec.rule;
    for (const auto &[name, value] : rec.metrics) {
        if (name == "t_us")
            e.tUs = value;
        else
            e.fields.emplace_back(name, value);
    }
    return e;
}

/** Replay @p entry through the ledger encoding and back; verify the
 *  recorded masks (and LFOC introspection) reproduce exactly. */
void
expectEntryReplays(const obs::JournalEntry &entry)
{
    const std::string line = obs::RunLedger::encode(entryAsRecord(entry));
    obs::RunRecord back;
    ASSERT_TRUE(obs::RunLedger::decode(line, &back)) << line;
    EXPECT_EQ(back.kind, "npartition_decision");
    const obs::JournalEntry round = entryFromRecord(back);

    const NPartitionInputs in = npartitionInputsFromEntry(round);
    const NPartitionDecision want = npartitionDecisionFromEntry(round);
    const NPartitionDecision got = decideNPartition(in);
    ASSERT_EQ(got.masks.size(), want.masks.size()) << entry.rule;
    for (std::size_t i = 0; i < got.masks.size(); ++i)
        EXPECT_EQ(got.masks[i].bits(), want.masks[i].bits())
            << entry.rule << " app " << i;
    ASSERT_EQ(got.classes.size(), want.classes.size());
    for (std::size_t i = 0; i < got.classes.size(); ++i)
        EXPECT_EQ(static_cast<int>(got.classes[i]),
                  static_cast<int>(want.classes[i]));
    ASSERT_EQ(got.errAfter.size(), want.errAfter.size());
    for (std::size_t i = 0; i < got.errAfter.size(); ++i)
        EXPECT_DOUBLE_EQ(got.errAfter[i], want.errAfter[i]);
}

// ------------------------------------------------------- replay -------

TEST(NPartitionReplay, AllFivePoliciesRoundTripThroughLedger)
{
    const unsigned ways = 20;
    const std::vector<AppObservation> apps = syntheticObservations(4, ways);

    for (const NPolicy policy :
         {NPolicy::Shared, NPolicy::Fair, NPolicy::Biased, NPolicy::Dynamic,
          NPolicy::Ucp, NPolicy::Lfoc}) {
        NPartitionInputs in;
        in.policy = policy;
        in.totalWays = ways;
        in.apps = apps;
        in.biasedFgWays = 11;
        in.dynMaxFgWays = ways - 1;
        const NPartitionDecision out = decideNPartition(in);
        ASSERT_EQ(out.masks.size(), apps.size()) << npolicyName(policy);
        const obs::JournalEntry e =
            makeNPartitionEntry(123.0, in, out, 0, true);
        EXPECT_EQ(e.kind, "npartition_decision");
        EXPECT_EQ(e.rule, npolicyName(policy));
        expectEntryReplays(e);
    }
}

TEST(NPartitionReplay, LfocBounceStateRoundTrips)
{
    // Drive one stateful LFOC partitioner across several windows with
    // drifting observations so the fractional-way error accumulators
    // take irrational-looking values, journaling each decision with
    // the *pre-decide* bounce state. Every record must replay.
    const unsigned ways = 20;
    LfocConfig cfg;
    LfocPartitioner lfoc(cfg);
    std::vector<obs::JournalEntry> journal;
    for (unsigned step = 0; step < 6; ++step) {
        std::vector<AppObservation> apps = syntheticObservations(5, ways);
        for (std::size_t i = 0; i < apps.size(); ++i)
            apps[i].mpki += 0.37 * static_cast<double>(step * (i + 1));

        NPartitionInputs in;
        in.policy = NPolicy::Lfoc;
        in.totalWays = ways;
        in.apps = apps;
        in.lfoc = cfg;
        in.lfocErrBefore = lfoc.bounceError();
        const std::vector<WayMask> masks = lfoc.decide(apps, ways);
        NPartitionDecision out;
        out.masks = masks;
        out.classes = lfoc.lastClasses();
        out.targets = lfoc.lastTargets();
        out.errAfter = lfoc.bounceError();
        journal.push_back(
            makeNPartitionEntry(1000.0 * step, in, out, step, true));
    }
    ASSERT_EQ(journal.size(), 6u);
    bool bounced = false;
    for (const obs::JournalEntry &e : journal) {
        expectEntryReplays(e);
        for (const auto &[name, value] : e.fields) {
            if (name.find("err_before") != std::string::npos &&
                value != 0.0)
                bounced = true;
        }
    }
    EXPECT_TRUE(bounced)
        << "the drifting mix must exercise nonzero bounce state, or "
           "this test proves nothing about carrying it";
}

// -------------------------------------------------- conservation ------

TEST(NAppAttribution, ConservationHoldsAcrossNOwners)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(32);

    // Four apps on the N-app server machine under a static fair split:
    // disjoint masks make the occupancy-vs-allocation bound exact.
    SystemConfig scfg = nAppSystem(8, 12, 12345);
    System sys(scfg);
    const char *names[] = {"429.mcf", "ferret", "fop", "470.lbm"};
    for (unsigned i = 0; i < 4; ++i)
        sys.addAppOnCores(Catalog::byName(names[i]).scaled(0.01), i * 2, 2,
                          i != 0);
    const std::vector<WayMask> masks = fairMasks(4, sys.llcWays());
    for (AppId id = 0; id < 4; ++id)
        sys.setWayMask(id, masks[id]);
    sys.run();

    const obs::AttributionBatch batch = obs::timeseries().drainScope();
    ASSERT_GE(batch.samples.size(), 2u);

    for (const obs::AttributionSample &s : batch.samples) {
        ASSERT_EQ(s.owners.size(), 4u);
        ASSERT_GT(s.llcSets, 0u);
        std::uint64_t owner_lines = 0;
        double busy_llc_j = 0.0;
        double dram_j = 0.0;
        for (const obs::OwnerSample &o : s.owners) {
            owner_lines += o.residentLines;

            // An app's lines live only in its allocated ways, so its
            // occupancy (lines / sets) is bounded by the way count.
            EXPECT_EQ(o.wayMaskBits, masks[o.owner].bits());
            EXPECT_LE(o.residentLines,
                      static_cast<std::uint64_t>(s.llcSets) *
                          masks[o.owner].count())
                << "owner " << o.owner
                << " occupies ways outside its mask";

            EXPECT_EQ(o.stallCompute + o.stallL2 + o.stallLlc +
                          o.stallDram + o.stallQueue,
                      o.cycles)
                << "stall buckets must partition owner " << o.owner
                << "'s cycles";

            busy_llc_j += o.busyJ + o.llcJ;
            dram_j += o.dramJ;
        }
        EXPECT_EQ(owner_lines, s.llcResidentLines);
        expectNearRelative(busy_llc_j, s.socketDynamicJ);
        expectNearRelative(dram_j, s.dramJ);
    }
}

// ---------------------------------------------------- zero cost -------

TEST(NAppZeroCost, StudyResultsBitIdenticalWithObsOn)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();

    // The observer-effect guard for the bounce accumulators: the
    // journal reads LFOC state through accessors and never re-runs
    // decide(), so an armed run must match an unarmed run bit for bit
    // on every policy outcome — including the stateful ones.
    const exec::ExperimentSpec spec = exec::nappSpec(
        {"429.mcf", "ferret", "fop"}, 4, 8,
        npolicyBit(NPolicy::Shared) | npolicyBit(NPolicy::Ucp) |
            npolicyBit(NPolicy::Lfoc) | npolicyBit(NPolicy::Dynamic),
        2, 0.01);

    ASSERT_FALSE(obs::enabled());
    const exec::SweepResult off = exec::runSpec(spec, 12345);

    exec::SweepResult on;
    {
        SamplingGuard armed(8);
        on = exec::runSpec(spec, 12345);
        obs::metrics().reset();
    }

    for (unsigned p = 0; p < kNumNPolicies; ++p) {
        ASSERT_EQ(off.napp[p].present, on.napp[p].present);
        if (!off.napp[p].present)
            continue;
        EXPECT_EQ(off.napp[p].stp, on.napp[p].stp);
        EXPECT_EQ(off.napp[p].throughputIps, on.napp[p].throughputIps);
        EXPECT_EQ(off.napp[p].unfairness, on.napp[p].unfairness);
        EXPECT_EQ(off.napp[p].fgSlowdown, on.napp[p].fgSlowdown);
        EXPECT_EQ(off.napp[p].socketEnergyJ, on.napp[p].socketEnergyJ);
        EXPECT_EQ(off.napp[p].wallEnergyJ, on.napp[p].wallEnergyJ);
        EXPECT_EQ(off.napp[p].sloBreaches, on.napp[p].sloBreaches);
        EXPECT_EQ(off.napp[p].remasks, on.napp[p].remasks);
    }
}

// ------------------------------------- end to end (SweepRunner) -------

constexpr unsigned kAllFive =
    npolicyBit(NPolicy::Shared) | npolicyBit(NPolicy::Fair) |
    npolicyBit(NPolicy::Ucp) | npolicyBit(NPolicy::Lfoc) |
    npolicyBit(NPolicy::Dynamic);

/** Run the small five-policy N-app spec under a fresh SweepRunner
 *  writing into @p dir; returns the rendered dashboard HTML. */
std::string
runNAppPoint(const fs::path &dir, const exec::ExperimentSpec &spec,
             std::vector<obs::RunRecord> *records_out)
{
    fs::remove_all(dir);
    fs::create_directories(dir);
    obs::timeseries().clear();

    obs::RunLedger ledger((dir / "runs.jsonl").string());
    EXPECT_TRUE(ledger.ok());

    exec::SweepRunnerOptions ro;
    ro.jobs = 1;
    ro.baseSeed = 12345;
    ro.ledger = &ledger;
    ro.benchName = "fig09n_napp_policies";
    ro.runId = "fig09n_napp_policies-12345-test";
    ro.attrDir = dir.string();
    exec::SweepRunner runner(ro);

    const std::vector<exec::SweepResult> results = runner.run({spec});
    EXPECT_EQ(results.size(), 1u);

    const obs::RunLedger::LoadResult loaded =
        obs::RunLedger::load(ledger.path());
    EXPECT_EQ(loaded.skipped, 0u);
    *records_out = loaded.records;

    dashboard::DashboardData data;
    data.title = "fig09n determinism";
    data.batches = obs::timeseries().collect();
    for (obs::RunRecord rec : loaded.records) {
        if (rec.kind != "point")
            continue;
        // The wall-clock stamps and the attrDir path are the only
        // host-dependent bytes of a point; everything else (metrics,
        // spec hash, decisions) must reproduce bit for bit.
        rec.tsMs = 0.0;
        rec.wallMs = 0.0;
        rec.attrFile.clear();
        data.points.push_back(rec);
    }
    for (obs::AttributionBatch &b : data.batches)
        b.attrFile.clear();

    std::ostringstream html;
    dashboard::renderDashboardHtml(html, data);
    obs::timeseries().clear();
    return html.str();
}

TEST(NAppEndToEnd, LedgersReplayableDecisionsAndDeterministicDashboard)
{
    CAPART_REQUIRE_OBS_COMPILED_IN();
    SamplingGuard armed(8);

    const exec::ExperimentSpec spec = exec::nappSpec(
        {"429.mcf", "ferret", "fop"}, 4, 8, kAllFive, 2, 0.01);

    const fs::path base =
        fs::path(testing::TempDir()) / "capart_napp_e2e";
    std::vector<obs::RunRecord> records;
    const std::string html_a =
        runNAppPoint(base / "a", spec, &records);

    // ---- ledger contents: the point links its side file; every one
    // ---- of the five policies journaled at least one decision.
    const obs::RunRecord *point = nullptr;
    unsigned by_rule[kNumNPolicies] = {};
    unsigned replayed = 0;
    for (const obs::RunRecord &rec : records) {
        EXPECT_EQ(rec.specHash, spec.hash());
        if (rec.kind == "point")
            point = &rec;
        if (rec.kind != "npartition_decision")
            continue;
        const obs::JournalEntry e = entryFromRecord(rec);
        const auto policy =
            static_cast<unsigned>(e.field("policy", -1.0));
        ASSERT_LT(policy, kNumNPolicies);
        EXPECT_EQ(rec.rule, npolicyName(static_cast<NPolicy>(policy)));
        ++by_rule[policy];
        expectEntryReplays(e);
        ++replayed;
    }
    ASSERT_NE(point, nullptr);
    ASSERT_FALSE(point->attrFile.empty())
        << "the N-app point must link its attribution side file";
    for (const NPolicy p : {NPolicy::Shared, NPolicy::Fair, NPolicy::Ucp,
                            NPolicy::Lfoc, NPolicy::Dynamic})
        EXPECT_GE(by_rule[static_cast<unsigned>(p)], 1u)
            << npolicyName(p) << " journaled no decision";
    EXPECT_GE(replayed, 5u);

    // ---- the side file parses and carries the napp_run segmentation
    // ---- markers, one per System run, policies in run order.
    std::ifstream in(point->attrFile);
    ASSERT_TRUE(in.good()) << point->attrFile;
    std::ostringstream text;
    text << in.rdbuf();
    obs::AttributionBatch batch;
    ASSERT_TRUE(obs::parseAttributionJson(text.str(), &batch));
    EXPECT_EQ(batch.specHash, spec.hash());
    EXPECT_GE(batch.samples.size(), 1u);
    std::vector<std::string> run_order;
    for (const obs::JournalEntry &e : batch.journal) {
        if (e.kind == "napp_run")
            run_order.push_back(e.rule);
    }
    // 5 policy runs + 3 solo baselines, every policy present exactly
    // once and the first policy first (run order is study order).
    ASSERT_EQ(run_order.size(), 8u);
    EXPECT_EQ(run_order.front(), "shared");
    for (const char *rule : {"fair", "ucp", "lfoc", "dynamic"})
        EXPECT_EQ(std::count(run_order.begin(), run_order.end(),
                             std::string(rule)),
                  1);
    EXPECT_EQ(std::count(run_order.begin(), run_order.end(),
                         std::string("solo")),
              3);

    // ---- byte determinism: a second same-seed run renders the same
    // ---- dashboard, and the same data renders identically twice.
    std::vector<obs::RunRecord> records_b;
    const std::string html_b =
        runNAppPoint(base / "b", spec, &records_b);
    EXPECT_EQ(html_a, html_b)
        << "the N-app dashboard must be byte-deterministic across "
           "same-seed runs";
    EXPECT_NE(html_a.find("data-samples=\""), std::string::npos);
    EXPECT_EQ(html_a.find("data-samples=\"0\""), std::string::npos);
    EXPECT_NE(html_a.find("npartition_decision"), std::string::npos);

    obs::metrics().reset();
    fs::remove_all(base);
}

} // namespace
} // namespace capart
