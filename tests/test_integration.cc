/**
 * @file
 * End-to-end integration tests: small-scale versions of the paper's
 * headline claims. These are directional checks — the bench binaries
 * reproduce the full tables/figures; here we assert the *shape* at a
 * scale that runs in seconds.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/co_scheduler.hh"
#include "sim/experiment.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

constexpr double kScale = 0.03;

/** Solo exec time at 4 threads and a given way allocation. */
Seconds
timeAtWays(const AppParams &app, unsigned ways)
{
    SoloOptions o;
    o.threads = 4;
    o.ways = ways;
    o.scale = kScale;
    return runSolo(app, o).time;
}

TEST(PaperClaims, LowUtilityAppFlatCurve)
{
    // §3.2: low-utility apps yield the same performance regardless of
    // LLC beyond the pathological case.
    const AppParams &app = Catalog::byName("swaptions");
    const Seconds t2 = timeAtWays(app, 2);
    const Seconds t12 = timeAtWays(app, 12);
    EXPECT_NEAR(t2 / t12, 1.0, 0.04);
}

TEST(PaperClaims, SaturatedUtilityAppHasSaturationPoint)
{
    // tomcat (saturated): big gain 1->6 ways, little gain 6->12.
    const AppParams &app = Catalog::byName("tomcat");
    const Seconds t2 = timeAtWays(app, 2);
    const Seconds t6 = timeAtWays(app, 6);
    const Seconds t12 = timeAtWays(app, 12);
    EXPECT_GT(t2 / t6, 1.05) << "must benefit below saturation";
    EXPECT_NEAR(t6 / t12, 1.0, 0.05) << "saturated above the knee";
}

/** Solo time at larger scale: capacity effects need warmed regions. */
Seconds
timeAtWaysWarm(const AppParams &app, unsigned ways)
{
    SoloOptions o;
    o.threads = 4;
    o.ways = ways;
    o.scale = 0.25;
    return runSolo(app, o).time;
}

TEST(PaperClaims, HighUtilityAppKeepsImproving)
{
    // 471.omnetpp (high utility): still gains from 6 -> 12 ways.
    const AppParams &app = Catalog::byName("471.omnetpp");
    const Seconds t6 = timeAtWaysWarm(app, 6);
    const Seconds t12 = timeAtWaysWarm(app, 12);
    EXPECT_GT(t6 / t12, 1.05);
}

TEST(PaperClaims, WorkingSetsMostlyFitSmallAllocations)
{
    // §1: 44% of apps reach max performance with 1 MB and 78% with
    // 3 MB. Our knees sit ~0.5 MB to the right (tiny allocations also
    // pay associativity and inclusion-victim costs; EXPERIMENTS.md),
    // so we check the same staircase at 1.5 MB / 3 MB: roughly half
    // fit the small allocation and most fit half the LLC.
    unsigned fits_small = 0, fits_half = 0, measured = 0;
    for (const auto &app : Catalog::all()) {
        if (app.suite == Suite::Microbench)
            continue;
        ++measured;
        const Seconds t12 = timeAtWaysWarm(app, 12);
        if (timeAtWaysWarm(app, 3) <= t12 * 1.05)
            ++fits_small;
        if (timeAtWaysWarm(app, 6) <= t12 * 1.05)
            ++fits_half;
    }
    const double f_small = static_cast<double>(fits_small) / measured;
    const double f_half = static_cast<double>(fits_half) / measured;
    EXPECT_GE(f_small, 0.40) << "paper: 44% fit the small allocation";
    EXPECT_LE(f_small, 0.80) << "the fraction must not be trivial";
    EXPECT_GE(f_half, 0.75) << "paper: 78% fit half the LLC";
    EXPECT_GT(f_half, f_small);
}

TEST(PaperClaims, PrefetchersHelpTheSensitiveSet)
{
    // Fig. 3: streaming SPEC codes gain notably from prefetching.
    for (const char *name : {"462.libquantum", "459.GemsFDTD"}) {
        const AppParams &app = Catalog::byName(name);
        SoloOptions on;
        on.threads = 4;
        on.scale = kScale;
        SoloOptions off = on;
        off.system.prefetch = PrefetchConfig::allEnabled(false);
        const Seconds t_on = runSolo(app, on).time;
        const Seconds t_off = runSolo(app, off).time;
        EXPECT_LT(t_on / t_off, 0.9) << name;
    }
}

TEST(PaperClaims, PrefetchersNeutralForRandomAccessApps)
{
    for (const char *name : {"swaptions", "avrora"}) {
        const AppParams &app = Catalog::byName(name);
        SoloOptions on;
        on.threads = 4;
        on.scale = kScale;
        SoloOptions off = on;
        off.system.prefetch = PrefetchConfig::allEnabled(false);
        const Seconds t_on = runSolo(app, on).time;
        const Seconds t_off = runSolo(app, off).time;
        EXPECT_NEAR(t_on / t_off, 1.0, 0.05) << name;
    }
}

TEST(PaperClaims, BandwidthHogHurtsBandwidthSensitiveApps)
{
    // Fig. 4: the uncached stream slows bandwidth-bound apps sharply
    // and compute-bound apps barely.
    const AppParams &hog = Catalog::byName("stream_uncached");
    auto hog_slowdown = [&](const char *name) {
        const AppParams &app = Catalog::byName(name);
        SoloOptions so;
        so.threads = 4;
        so.scale = kScale;
        const Seconds solo = runSolo(app, so).time;
        PairOptions po;
        po.scale = kScale;
        const PairResult pr = runPair(app, hog, po);
        return pr.fgTime / solo;
    };
    EXPECT_GT(hog_slowdown("470.lbm"), 1.3);
    EXPECT_GT(hog_slowdown("462.libquantum"), 1.3);
    EXPECT_LT(hog_slowdown("453.povray"), 1.05);
    EXPECT_LT(hog_slowdown("swaptions"), 1.05);
}

TEST(PaperClaims, PolicyOrderingOnASensitivePair)
{
    // §5.2: biased <= fair and biased <= shared in fg degradation for
    // a pair that needs protection.
    CoScheduleOptions opts;
    opts.scale = kScale;
    CoScheduler cs(Catalog::byName("canneal"),
                   Catalog::byName("streamcluster"), opts);
    const double sh = cs.summarize(Policy::Shared).fgSlowdown;
    const double fa = cs.summarize(Policy::Fair).fgSlowdown;
    const double bi = cs.summarize(Policy::Biased).fgSlowdown;
    EXPECT_LE(bi, fa * 1.02);
    EXPECT_LE(bi, sh * 1.02);
}

TEST(PaperClaims, ConsolidationBeatsSequentialForSaturatingApps)
{
    // Figs. 10-11: running two poorly-scaling apps side by side beats
    // running each on the whole machine sequentially.
    CoScheduleOptions opts;
    opts.scale = kScale;
    CoScheduler cs(Catalog::byName("h2"), Catalog::byName("batik"),
                   opts);
    const ConsolidationSummary s = cs.summarize(Policy::Biased);
    EXPECT_GT(s.weightedSpeedup, 1.10);
    EXPECT_LT(s.energyVsSequential, 0.95);
    EXPECT_LT(s.wallEnergyVsSequential, 0.95);
}

TEST(PaperClaims, DynamicFreesCapacityForBackground)
{
    // §6.4: against a foreground that does not need the LLC, dynamic
    // partitioning hands capacity to the background, beating the
    // conservative starting split.
    // Long enough run for the controller to probe repeatedly, and a
    // *stationary* low-MPKI foreground: scaled runs of cache-warming
    // apps drift for their whole (shortened) life, which the detector
    // rightly treats as ongoing phase changes and stays conservative.
    CoScheduleOptions opts;
    opts.scale = 0.3;
    opts.system.perfWindow = 6e-6;
    CoScheduler cs(Catalog::byName("453.povray"),
                   Catalog::byName("471.omnetpp"), opts);
    const ConsolidationSummary dy = cs.summarize(Policy::Dynamic);
    const ConsolidationSummary bi = cs.summarize(Policy::Biased);
    // Foreground within a few percent of best-static protection.
    EXPECT_LT(dy.fgSlowdown, bi.fgSlowdown + 0.05);
    // Controller must have released ways (dedup is cache-insensitive):
    // the probe reaches small allocations and the average allocation
    // sits well below the conservative 11-way starting split. (The
    // *final* value depends on where the run happens to end, so the
    // assertion is over the whole allocation history.)
    ASSERT_NE(cs.lastDynamicController(), nullptr);
    const auto &history = cs.lastDynamicController()->history();
    ASSERT_FALSE(history.empty());
    unsigned min_ways = 12;
    double sum_ways = 0.0;
    for (const auto &ev : history) {
        min_ways = std::min(min_ways, ev.fgWays);
        sum_ways += ev.fgWays;
    }
    EXPECT_LE(min_ways, 4u);
    EXPECT_LT(sum_ways / history.size(), 9.0);
}

TEST(PaperClaims, AsymmetricInterference)
{
    // §5.1: relationships are asymmetric — canneal suffers from
    // streamcluster more than streamcluster suffers from canneal.
    SoloOptions so;
    so.threads = 4;
    so.scale = kScale;
    PairOptions po;
    po.scale = kScale;

    const Seconds canneal_solo =
        runSolo(Catalog::byName("canneal"), so).time;
    const Seconds stream_solo =
        runSolo(Catalog::byName("streamcluster"), so).time;
    const double canneal_hurt =
        runPair(Catalog::byName("canneal"),
                Catalog::byName("streamcluster"), po)
            .fgTime /
        canneal_solo;
    const double stream_hurt =
        runPair(Catalog::byName("streamcluster"),
                Catalog::byName("canneal"), po)
            .fgTime /
        stream_solo;
    EXPECT_GT(canneal_hurt, stream_hurt);
}

} // namespace
} // namespace capart
