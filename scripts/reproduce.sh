#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, and run every
# table/figure binary, capturing logs at the repository root.
#
#   --sanitize   additionally build with ASan+UBSan into build-asan/
#                and run the test suite under the sanitizers first.
#
#   JOBS=N       sweep parallelism for the heavy binaries
#                (default: all cores). Results are bit-identical for
#                any N — seeds derive from spec hashes, not schedule.
#   RESUME=1     memoize sweep points in .capart-cache/ so an
#                interrupted run restarts where it stopped.
#
# Every experiment appends to run_ledger.jsonl (one JSON record per
# sweep point); afterwards bench_report aggregates the ledger into
# BENCH_capart.json and bench_report.md. Keep the ledger across
# invocations and the report compares the newest run against the
# oldest — an advisory regression check between reproductions.
set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-0}" # 0 = all cores
LEDGER="${LEDGER:-run_ledger.jsonl}"
SWEEP_FLAGS="--jobs=$JOBS"
[ "${RESUME:-0}" = "1" ] && SWEEP_FLAGS="$SWEEP_FLAGS --resume"

if [ "${1:-}" = "--sanitize" ]; then
    cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAPART_SANITIZE=ON
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$(basename "$b")" in
    bench_report | bench_dashboard) continue ;; # aggregators, after the loop
    esac
    echo "### $b"
    case "$b" in
    *micro_simulator*)
        # google-benchmark binary; takes no capart flags.
        "$b"
        ;;
    *fig13*)
        # The dynamic-policy sweep additionally records per-owner
        # attribution samples and the decision journal, and renders
        # the self-contained HTML dashboard over them at exit.
        "$b" $SWEEP_FLAGS --ledger="$LEDGER" --log-out=events.jsonl \
            --obs-sample-period=8 --attr-dir=attr \
            --dashboard-out=dashboard.html
        ;;
    *fig06* | *fig07* | *fig08* | *fig09* | *fig10* | *fig11*)
        # Sweep binaries: parallel, optionally memoized (see header).
        "$b" $SWEEP_FLAGS --ledger="$LEDGER" --log-out=events.jsonl
        ;;
    *)
        "$b" --ledger="$LEDGER" --log-out=events.jsonl
        ;;
    esac
done 2>&1 | tee bench_output.txt

# Aggregate the ledger: BENCH_capart.json time series + markdown
# regression report (advisory — a FAIL verdict does not stop the run).
build/bench/bench_report --ledger="$LEDGER" \
    --json-out=BENCH_capart.json --md-out=bench_report.md
echo "wrote BENCH_capart.json and bench_report.md"

# Re-render the fig13 dashboard from the ledger + side files alone
# (the standalone path; the in-bench render above is the other).
build/bench/bench_dashboard --ledger="$LEDGER" --bench=fig13_dynamic \
    --out=dashboard_from_ledger.html &&
    echo "wrote dashboard.html and dashboard_from_ledger.html"
