#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, and run every
# table/figure binary, capturing logs at the repository root.
#
#   --sanitize   additionally build with ASan+UBSan into build-asan/
#                and run the test suite under the sanitizers first.
#
#   JOBS=N       sweep parallelism for the heavy binaries
#                (default: all cores). Results are bit-identical for
#                any N — seeds derive from spec hashes, not schedule.
#   RESUME=1     memoize sweep points in .capart-cache/ so an
#                interrupted run restarts where it stopped.
set -u
cd "$(dirname "$0")/.."

JOBS="${JOBS:-0}" # 0 = all cores
SWEEP_FLAGS="--jobs=$JOBS"
[ "${RESUME:-0}" = "1" ] && SWEEP_FLAGS="$SWEEP_FLAGS --resume"

if [ "${1:-}" = "--sanitize" ]; then
    cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAPART_SANITIZE=ON
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b"
    case "$b" in
    *fig06* | *fig07* | *fig08* | *fig09* | *fig10* | *fig11* | *fig13*)
        # Sweep binaries: parallel, optionally memoized (see header).
        "$b" $SWEEP_FLAGS
        ;;
    *)
        "$b"
        ;;
    esac
done 2>&1 | tee bench_output.txt
