#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, and run every
# table/figure binary, capturing logs at the repository root.
#
#   --sanitize   additionally build with ASan+UBSan into build-asan/
#                and run the test suite under the sanitizers first.
set -u
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--sanitize" ]; then
    cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCAPART_SANITIZE=ON
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure 2>&1 |
        tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b"
    "$b"
done 2>&1 | tee bench_output.txt
