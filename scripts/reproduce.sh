#!/usr/bin/env bash
# Reproduce the full evaluation: build, test, and run every
# table/figure binary, capturing logs at the repository root.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b"
    "$b"
done 2>&1 | tee bench_output.txt
