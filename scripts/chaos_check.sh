#!/usr/bin/env bash
#
# Chaos gauntlet for the process-isolated shard supervisor.
#
# Runs the fig13 sweep under every failure the supervisor claims to
# survive — worker crashes, torn segment tails, hung workers, a SIGKILL
# of the whole run followed by --resume, and a graceful SIGTERM — and
# requires each scenario's stdout to be byte-identical to a clean
# serial (--jobs=1) run. That is the supervisor's core invariant:
# fault tolerance may never change a result, only recompute it.
#
# The crash scenarios additionally arm the live status plane
# (--status-out): the final status.json must reflect the injected
# faults — retries for transient crashes, quarantines for persistent
# ones — while the sweep still completes.
#
# Usage: scripts/chaos_check.sh [build-dir]   (default: build)

set -euo pipefail

BUILD_DIR=${1:-build}
BENCH="$BUILD_DIR/bench/bench_fig13_dynamic"
if [[ ! -x $BENCH ]]; then
    echo "error: $BENCH not built" >&2
    exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

COMMON=(--quick --scale=0.02 --seed=1)
# Fast retries: the gauntlet injects faults, it should not sit in backoff.
export CAPART_SHARD_BACKOFF_MS=50

fail=0

check_identical() {
    local name=$1
    if cmp -s "$WORK/golden.txt" "$WORK/$name.txt"; then
        echo "ok: $name matches golden output"
    else
        echo "FAIL: $name diverges from golden output" >&2
        diff -u "$WORK/golden.txt" "$WORK/$name.txt" | head -40 >&2 || true
        fail=1
    fi
}

sharded() {
    local name=$1
    shift
    "$BENCH" "${COMMON[@]}" --shards=3 --ledger-dir="$WORK/$name.shards" \
        "$@" > "$WORK/$name.txt"
}

# check_status FILE PYTHON-EXPR: assert the expression holds over the
# decoded status.json (bound to `s`).
check_status() {
    local file=$1 expr=$2
    if python3 - "$file" "$expr" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
sys.exit(0 if eval(sys.argv[2]) else 1)
EOF
    then
        echo "ok: $(basename "$file") satisfies: $expr"
    else
        echo "FAIL: $(basename "$file") violates: $expr" >&2
        fail=1
    fi
}

echo "== golden: serial run"
"$BENCH" "${COMMON[@]}" --jobs=1 > "$WORK/golden.txt"

echo "== clean sharded run"
sharded clean
check_identical clean

echo "== worker crashes (every 5th point dies on its first attempt)"
(
    export CAPART_CHAOS_CRASH_MOD=5
    sharded crash --status-out="$WORK/crash.status.json"
)
check_identical crash
# The status plane watched the crashes: retries recorded, nothing
# quarantined, sweep complete — and recording it changed nothing
# (check_identical above proves the results stayed byte-identical).
check_status "$WORK/crash.status.json" \
    "s['state'] == 'complete' and s['retries'] > 0 \
     and s['points_quarantined'] == 0 \
     and s['points_done'] == s['points_total'] \
     and sum(sh['crashes'] for sh in s['shard_states']) > 0"

echo "== persistent crashes (every 5th point dies on EVERY attempt)"
if ! (
    export CAPART_CHAOS_CRASH_MOD=5 CAPART_CHAOS_CRASH_ATTEMPTS=99
    sharded quarantine --status-out="$WORK/quarantine.status.json"
); then
    echo "FAIL: quarantine scenario aborted the sweep" >&2
    fail=1
fi
# Quarantined points are holes, so stdout legitimately diverges from
# golden here; the contract is that the sweep completes and the final
# snapshot accounts for every point as done or quarantined.
check_status "$WORK/quarantine.status.json" \
    "s['state'] == 'complete' and s['points_quarantined'] > 0 \
     and s['points_done'] + s['points_quarantined'] == s['points_total'] \
     and sum(sh['points_quarantined'] for sh in s['shard_states']) \
         == s['points_quarantined']"

echo "== torn segment tails (every 6th point tears its segment)"
(
    export CAPART_CHAOS_TORN_MOD=6
    sharded torn
)
check_identical torn

echo "== hung workers (every 7th point hangs; heartbeat reaps them)"
(
    export CAPART_CHAOS_HANG_MOD=7
    sharded hang --point-timeout=20
)
check_identical hang

echo "== kill -9 mid-run, then --resume"
"$BENCH" "${COMMON[@]}" --shards=3 --ledger-dir="$WORK/kill9.shards" \
    > "$WORK/kill9-first.txt" &
SUP=$!
sleep 2
kill -9 "$SUP" 2>/dev/null || true
wait "$SUP" 2>/dev/null || true
# A SIGKILLed supervisor cannot reap its workers; kill the orphans so
# they do not race the resumed run on the same segment files. (The
# [o] bracket keeps pkill from matching its own command line.)
pkill -9 -f -- "--shard-w[o]rker=" 2>/dev/null || true
sleep 0.2
sharded kill9 --resume
check_identical kill9

echo "== graceful SIGTERM, then --resume"
"$BENCH" "${COMMON[@]}" --shards=3 --ledger-dir="$WORK/term.shards" \
    --ledger="$WORK/term.jsonl" > "$WORK/term-first.txt" &
SUP=$!
sleep 2
kill -TERM "$SUP" 2>/dev/null || true
rc=0
wait "$SUP" || rc=$?
if [[ $rc -ne 0 && $rc -ne 143 ]]; then
    echo "FAIL: SIGTERM run exited $rc (want 143, or 0 if it finished)" >&2
    fail=1
fi
if [[ $rc -eq 143 ]] &&
    ! grep -q '"kind":"run_interrupted"' "$WORK/term.jsonl"; then
    echo "FAIL: interrupted run left no run_interrupted record" >&2
    fail=1
fi
if pgrep -f -- "--shard-w[o]rker=" > /dev/null; then
    echo "FAIL: orphaned shard workers survived graceful SIGTERM" >&2
    pkill -9 -f -- "--shard-w[o]rker=" 2>/dev/null || true
    fail=1
fi
sharded term --resume --ledger="$WORK/term.jsonl"
check_identical term

if [[ $fail -ne 0 ]]; then
    echo "chaos check: FAILED" >&2
    exit 1
fi
echo "chaos check: every scenario byte-identical to the serial run"
