#include "bench_common.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#ifndef _WIN32
#include <pthread.h>
#include <unistd.h>
#endif

#include "common/logging.hh"
#include "dashboard/dashboard.hh"
#include "obs/metrics.hh"
#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "obs/trace_stitch.hh"
#include "workload/catalog.hh"

namespace capart::bench
{

namespace
{
constexpr const char *kDefaultCacheDir = ".capart-cache";

/**
 * Export destinations for the observability layer, written from an
 * atexit handler so every bench binary gets --metrics-out/--trace-out
 * without touching its main(). Failures go to stderr: the figure on
 * stdout must never change shape because a side file was unwritable.
 */
std::string gMetricsOut;  // NOLINT(cert-err58-cpp)
std::string gTraceOut;    // NOLINT(cert-err58-cpp)
std::string gDashboardOut; // NOLINT(cert-err58-cpp)
std::string gAttrDir;      // NOLINT(cert-err58-cpp)
std::string gStatusOut;    // NOLINT(cert-err58-cpp)

/** Supervisor only (> 1): shard count of this invocation's sweeps.
 *  Tells the atexit exporter to stitch the per-shard worker traces
 *  with the supervisor's own into gTraceOut. */
unsigned gShards = 0;

/** Ledger state of this invocation (one run id across all records). */
std::unique_ptr<obs::RunLedger> gLedger;     // NOLINT(cert-err58-cpp)
std::string gBenchName;                      // NOLINT(cert-err58-cpp)
std::string gRunId;                          // NOLINT(cert-err58-cpp)
std::uint64_t gSeed = 0;
std::chrono::steady_clock::time_point gWallStart;

/** Re-exec command of this invocation (shard supervisors spawn it). */
std::vector<std::string> gWorkerCmd; // NOLINT(cert-err58-cpp)

/** Signal received (0 = none); polled by shard supervisors/workers.
 *  Written by the signal watcher thread, read by the sweep loops; a
 *  plain aligned int store/load on every supported target. */
volatile std::sig_atomic_t gStopSignal = 0;
/** True when a shard supervisor or worker owns shutdown: the watcher
 *  only sets the flag and the sweep loop exits at a point boundary. */
bool gCooperativeShutdown = false;

#ifdef _WIN32
/**
 * Windows fallback (no sigwait): the handler only does async-signal-
 * safe work — set the flag, and on a second signal die immediately.
 * Non-cooperative benches lose the atexit flush on interrupt here;
 * the POSIX path below (the supported platform) does not.
 */
extern "C" void
onStopSignal(int sig)
{
    if (gStopSignal != 0)
        std::_Exit(128 + sig); // second signal: no more patience
    gStopSignal = sig;
}
#endif

/**
 * Arm SIGTERM/SIGINT handling, once per process. POSIX: block both
 * signals process-wide (worker threads created later inherit the
 * mask) and consume them on a dedicated watcher thread via sigwait,
 * so shutdown runs in normal thread context — no async-signal-safety
 * constraints. In cooperative mode (shard supervisor or worker) the
 * watcher only sets the flag and the sweep loop merges/flushes and
 * exits at the next point boundary; otherwise the watcher calls
 * std::exit itself, flushing ledger/metrics/trace through the atexit
 * exporters (safe here: the obs sinks are already thread-safe). A
 * second signal always aborts immediately.
 */
void
installSignalHandlers()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
#ifndef _WIN32
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread([set]() mutable {
        for (;;) {
            int sig = 0;
            if (sigwait(&set, &sig) != 0)
                continue;
            if (gStopSignal != 0)
                std::_Exit(128 + sig); // second signal
            gStopSignal = sig;
            if (!gCooperativeShutdown)
                std::exit(128 + sig);
        }
    }).detach();
#else
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
#endif
}

/** Path of the running binary (re-exec target for shard workers). */
std::string
selfExePath(const char *argv0)
{
#ifndef _WIN32
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
#endif
    return argv0 ? argv0 : "";
}

double
unixMillisNow()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** argv[0] basename with any "bench_" prefix stripped. */
std::string
benchNameFromArgv0(const char *argv0)
{
    std::string name =
        std::filesystem::path(argv0 ? argv0 : "bench").filename().string();
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    return name.empty() ? "bench" : name;
}

void
exportObsFiles()
{
    if (gLedger) {
        // One `bench` record closes the invocation: total wall time
        // plus the final counter snapshot, so the ledger alone shows
        // what the run did and what it cost.
        obs::RunRecord rec;
        rec.kind = "bench";
        rec.bench = gBenchName;
        rec.run = gRunId;
        rec.seed = gSeed;
        rec.tsMs = unixMillisNow();
        rec.wallMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - gWallStart)
                         .count();
        rec.counters = obs::metrics().counterSnapshot();
        gLedger->append(rec);
    }
    if (!gMetricsOut.empty()) {
        std::ofstream out(gMetricsOut);
        if (out)
            obs::metrics().writeJson(out);
        else
            std::fprintf(stderr, "capart: cannot write --metrics-out=%s\n",
                         gMetricsOut.c_str());
    }
    if (!gTraceOut.empty()) {
        if (gShards > 1 && obs::enabled()) {
            // Supervisor of a sharded sweep: dump this process's own
            // timeline (lifecycle instants), then stitch it with the
            // workers' `<trace>.shard-<k>` files into one --trace-out
            // document. Shards that never spawned (clamped count) or
            // died mid-export are tolerated and counted in the
            // stitched metadata.
            const std::string sup = gTraceOut + ".supervisor";
            {
                std::ofstream out(sup);
                if (out)
                    obs::tracer().writeChromeTrace(out);
            }
            std::vector<obs::StitchSource> sources;
            sources.push_back({sup, "supervisor"});
            for (unsigned k = 0; k < gShards; ++k)
                sources.push_back(
                    {gTraceOut + ".shard-" + std::to_string(k),
                     "shard " + std::to_string(k)});
            obs::stitchTraceFiles(sources, gTraceOut);
        } else {
            std::ofstream out(gTraceOut);
            if (out)
                obs::tracer().writeChromeTrace(out);
            else
                std::fprintf(stderr,
                             "capart: cannot write --trace-out=%s\n",
                             gTraceOut.c_str());
        }
    }
    if (!gDashboardOut.empty()) {
        // Points come back out of the ledger file (they were appended
        // as the sweep ran); batches come from the process-wide
        // attribution recorder (deposited per point by the sweep
        // runner, plus any undrained direct-run scope).
        std::vector<obs::RunRecord> points;
        if (gLedger) {
            for (auto &rec : obs::RunLedger::load(gLedger->path()).records) {
                if (rec.kind == "point" && rec.run == gRunId)
                    points.push_back(std::move(rec));
            }
        }
        const std::string bench =
            gBenchName.empty() ? "run" : gBenchName;
        dashboard::writeDashboardFile(
            gDashboardOut,
            "capart " + bench + (gRunId.empty() ? "" : " — " + gRunId),
            points, gStatusOut);
    }
}

void
enableObsExport()
{
    static bool registered = false;
    if (!registered) {
        registered = true;
        // Touch the globals before registering the handler: function
        // statics are destroyed in reverse construction order, so
        // constructing them first guarantees they outlive the atexit
        // exporter. timeseries() included — the dashboard renderer
        // collects from it inside the handler.
        obs::metrics();
        obs::tracer();
        obs::timeseries();
        std::atexit(exportObsFiles);
    }
    if (!obs::kCompiledIn) {
        std::fprintf(stderr,
                     "capart: observability compiled out (CAPART_OBS=OFF); "
                     "--metrics-out/--trace-out will record nothing\n");
    }
    obs::setEnabled(true);
}
} // namespace

const std::string &
runId()
{
    return gRunId;
}

BenchOptions
parseArgs(int argc, char **argv, double default_scale,
          const char *description)
{
    BenchOptions opts;
    opts.scale = default_scale;
    gWallStart = std::chrono::steady_clock::now();
    installSignalHandlers();
    // Re-exec command for shard workers: the resolved binary plus every
    // flag as given. The supervisor appends --shards/--shard-worker/
    // --ledger-dir, which override because later flags win here.
    gWorkerCmd.clear();
    gWorkerCmd.push_back(selfExePath(argv[0]));
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--shard-worker=", 0) != 0)
            gWorkerCmd.push_back(argv[i]);
    }
    bool isolation_process = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scale=", 0) == 0) {
            opts.scale = std::atof(arg.c_str() + 8);
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--quick") {
            opts.quick = true;
            opts.scale = std::min(opts.scale, default_scale * 0.3);
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opts.jobs =
                static_cast<unsigned>(std::strtoul(arg.c_str() + 7,
                                                   nullptr, 10));
            if (opts.jobs == 0)
                opts.jobs = std::thread::hardware_concurrency();
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = arg.substr(12);
            opts.resume = true;
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opts.metricsOut = arg.substr(14);
            gMetricsOut = opts.metricsOut;
            enableObsExport();
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opts.traceOut = arg.substr(12);
            gTraceOut = opts.traceOut;
            enableObsExport();
        } else if (arg.rfind("--ledger=", 0) == 0) {
            opts.ledgerOut = arg.substr(9);
            enableObsExport();
        } else if (arg.rfind("--obs-sample-period=", 0) == 0) {
            opts.obsSamplePeriod =
                std::strtoull(arg.c_str() + 20, nullptr, 10);
            enableObsExport();
            obs::timeseries().setPeriod(opts.obsSamplePeriod);
        } else if (arg.rfind("--attr-dir=", 0) == 0) {
            opts.attrDir = arg.substr(11);
            gAttrDir = opts.attrDir;
            std::filesystem::create_directories(gAttrDir);
            enableObsExport();
        } else if (arg.rfind("--dashboard-out=", 0) == 0) {
            opts.dashboardOut = arg.substr(16);
            gDashboardOut = opts.dashboardOut;
            enableObsExport();
        } else if (arg.rfind("--shards=", 0) == 0) {
            opts.shards = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 9, nullptr, 10));
            if (opts.shards == 0)
                opts.shards = std::thread::hardware_concurrency();
            if (opts.shards > 1)
                isolation_process = true;
        } else if (arg.rfind("--isolation=", 0) == 0) {
            const std::string mode = arg.substr(12);
            if (mode == "process") {
                isolation_process = true;
            } else if (mode == "thread" || mode == "none") {
                isolation_process = false;
                opts.shards = 0;
            } else {
                std::fprintf(stderr, "invalid --isolation (want "
                                     "process or thread)\n");
                std::exit(1);
            }
        } else if (arg.rfind("--shard-worker=", 0) == 0) {
            opts.shardWorker = static_cast<int>(
                std::strtol(arg.c_str() + 15, nullptr, 10));
        } else if (arg.rfind("--ledger-dir=", 0) == 0) {
            opts.ledgerDir = arg.substr(13);
        } else if (arg.rfind("--point-timeout=", 0) == 0) {
            opts.pointTimeoutS = std::atof(arg.c_str() + 16);
        } else if (arg.rfind("--max-retries=", 0) == 0) {
            opts.maxRetries = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 14, nullptr, 10));
        } else if (arg.rfind("--status-out=", 0) == 0) {
            opts.statusOut = arg.substr(13);
            gStatusOut = opts.statusOut;
            enableObsExport();
        } else if (arg.rfind("--prom-out=", 0) == 0) {
            opts.promOut = arg.substr(11);
            enableObsExport();
        } else if (arg.rfind("--log-out=", 0) == 0) {
            // Sink opened after the loop: a later --shard-worker (the
            // supervisor appends it last) rewrites the path per shard.
            opts.logOut = arg.substr(10);
        } else if (arg.rfind("--log-level=", 0) == 0) {
            LogLevel lvl;
            if (!parseLogLevel(arg.substr(12), &lvl)) {
                std::fprintf(stderr,
                             "invalid --log-level (want debug, info, "
                             "warn, or error)\n");
                std::exit(1);
            }
            setLogLevel(lvl);
        } else {
            std::printf("%s\n\nusage: %s [--scale=F] [--csv] [--quick] "
                        "[--seed=N] [--jobs=N] [--resume] "
                        "[--cache-dir=D] [--metrics-out=F] "
                        "[--trace-out=F]\n"
                        "  --scale=F    app instruction-count scale "
                        "(default %.3g)\n"
                        "  --csv        machine-readable output\n"
                        "  --quick      cheaper settings for smoke runs\n"
                        "  --jobs=N     parallel sweep workers "
                        "(0 = all host cores);\n"
                        "               output is bit-identical for "
                        "every N\n"
                        "  --resume     memoize finished sweep points in "
                        "%s/\n"
                        "               and skip them on re-runs\n"
                        "  --cache-dir=D  --resume with cache files "
                        "under D\n"
                        "  --metrics-out=F  write observability counters/"
                        "gauges/histograms\n"
                        "               to F as JSON on exit\n"
                        "  --trace-out=F  write a Chrome trace_event "
                        "JSON timeline to F\n"
                        "               on exit (open in Perfetto or "
                        "about:tracing)\n"
                        "  --ledger=F   append one JSONL run-ledger "
                        "record per sweep point\n"
                        "               plus a closing bench record to F "
                        "(see bench_report)\n"
                        "  --obs-sample-period=N  snapshot per-owner "
                        "attribution (LLC ways,\n"
                        "               stalls, energy, DRAM channels) "
                        "every N quanta\n"
                        "  --attr-dir=D write one attribution JSON side "
                        "file per computed\n"
                        "               sweep point under D and ledger "
                        "partitioner decisions\n"
                        "  --dashboard-out=F  render the self-contained "
                        "HTML dashboard to F\n"
                        "               on exit (see bench_dashboard)\n"
                        "  --log-out=F  structured JSONL event log to F "
                        "(\"-\" = stderr)\n"
                        "  --log-level=L  drop structured events below L "
                        "(debug|info|warn|error)\n"
                        "  --shards=N   run sweeps across N supervised "
                        "worker processes\n"
                        "               (crash/hang isolation; 0 = all "
                        "host cores);\n"
                        "               merged output is bit-identical "
                        "to --jobs=1\n"
                        "  --isolation=M  process (same as --shards) or "
                        "thread (default)\n"
                        "  --ledger-dir=D shard segment/results/log "
                        "files under D\n"
                        "               (default <cache-dir>/shards)\n"
                        "  --point-timeout=S  kill a shard stuck on one "
                        "point for S s\n"
                        "               (default 0 = off; enable only "
                        "when S exceeds\n"
                        "               the slowest legitimate point)\n"
                        "  --max-retries=N  retries before a failing "
                        "point is quarantined\n"
                        "               (default 2)\n"
                        "  --status-out=F  (with --shards) atomically "
                        "refresh a live sweep\n"
                        "               status.json at F (watch with "
                        "bench_status --watch F)\n"
                        "  --prom-out=F (with --shards) refresh a "
                        "Prometheus text\n"
                        "               exposition file at F on the "
                        "same cadence\n",
                        description, argv[0], default_scale,
                        kDefaultCacheDir);
            std::exit(arg == "--help" ? 0 : 1);
        }
    }
    if (opts.scale <= 0.0) {
        std::fprintf(stderr, "invalid --scale\n");
        std::exit(1);
    }
    if (opts.cacheDir.empty())
        opts.cacheDir = kDefaultCacheDir;
    if (isolation_process && opts.shards < 2) {
        opts.shards = opts.jobs > 1 ? opts.jobs
                                    : std::thread::hardware_concurrency();
        opts.shards = std::max(opts.shards, 2u);
    }
    if (opts.shardWorker >= 0) {
        // Shard worker: its records go to its own ledger segment, and
        // the supervising parent owns the user-facing exports. Metrics
        // and traces are still worth keeping per worker — under the
        // `<path>.shard-<k>` naming convention, never the parent's
        // paths (every worker writing the same file was last-writer-
        // wins clobbering). The supervisor collects them afterwards:
        // traces are stitched into the parent's --trace-out, counters
        // folded into --prom-out. Dashboard and ledger exports stay
        // disabled — the supervisor owns both (a worker ledger record
        // would double-count once segments merge).
        const std::string suffix =
            ".shard-" + std::to_string(opts.shardWorker);
        if (!gMetricsOut.empty())
            gMetricsOut += suffix;
        if (!gTraceOut.empty())
            gTraceOut += suffix;
        gDashboardOut.clear();
        gStatusOut.clear();
        opts.ledgerOut.clear();
        if (!opts.logOut.empty() && opts.logOut != "-")
            opts.logOut += suffix;
    } else if (opts.shards > 1) {
        gShards = opts.shards;
    }
    if (!opts.logOut.empty())
        setLogSink(opts.logOut);
    if (opts.shards > 1 || opts.shardWorker >= 0) {
        if (opts.ledgerDir.empty())
            opts.ledgerDir = opts.cacheDir + "/shards";
        // The sweep loop owns shutdown: the handler only sets the flag
        // and the supervisor/worker exits at a point boundary.
        gCooperativeShutdown = true;
    }
    if (!opts.ledgerOut.empty()) {
        // Built after the loop so the id reflects the final --seed no
        // matter the flag order.
        gBenchName = benchNameFromArgv0(argv[0]);
        gSeed = opts.seed;
        gRunId = gBenchName + "-" + std::to_string(opts.seed) + "-" +
                 std::to_string(static_cast<std::uint64_t>(
                     unixMillisNow()));
        gLedger = std::make_unique<obs::RunLedger>(opts.ledgerOut);
    }
    if (gBenchName.empty() && !gDashboardOut.empty())
        gBenchName = benchNameFromArgv0(argv[0]);
    return opts;
}

exec::SweepRunner
makeRunner(const BenchOptions &opts, const std::string &bench_name)
{
    exec::SweepRunnerOptions ro;
    ro.jobs = opts.jobs;
    ro.baseSeed = opts.seed;
    if (opts.resume) {
        std::filesystem::create_directories(opts.cacheDir);
        ro.cachePath = opts.cacheDir + "/" + bench_name + ".cache";
    }
    ro.progress = [](std::size_t done, std::size_t total) {
        // Stderr only: stdout (the table/CSV) stays byte-identical
        // regardless of completion order.
        std::fprintf(stderr, "\r%zu/%zu sweep points done", done, total);
        if (done == total)
            std::fputc('\n', stderr);
    };
    ro.benchName = bench_name;
    if (gLedger) {
        ro.ledger = gLedger.get();
        ro.runId = gRunId;
    }
    ro.attrDir = gAttrDir;
    // Process-isolated shard mode (see exec/shard_supervisor.hh).
    ro.shards = opts.shards;
    ro.shardWorker = opts.shardWorker;
    ro.ledgerDir = opts.ledgerDir;
    ro.resumeShards = opts.resume;
    ro.pointTimeoutS = opts.pointTimeoutS;
    ro.maxRetries = opts.maxRetries;
    ro.workerCmd = gWorkerCmd;
    ro.stopFlag = &gStopSignal;
    // Live status plane (supervisor side; workers ignore these).
    ro.statusPath = opts.statusOut;
    ro.promPath = opts.promOut;
    ro.workerMetricsBase = opts.metricsOut;
    if ((ro.shards > 1 || ro.shardWorker >= 0) && ro.runId.empty()) {
        // Segment records need a run id even without --ledger.
        ro.runId = bench_name + "-" + std::to_string(opts.seed) + "-" +
                   std::to_string(
                       static_cast<std::uint64_t>(unixMillisNow()));
    }
    return exec::SweepRunner(ro);
}

void
emit(const BenchOptions &opts, const std::string &title,
     const Table &table)
{
    if (opts.csv) {
        std::cout << "# " << title << "\n";
        table.printCsv(std::cout);
    } else {
        std::cout << "\n== " << title << " ==\n";
        table.print(std::cout);
    }
    std::cout.flush();
}

SoloResult
soloAtThreads(const AppParams &app, unsigned threads,
              const BenchOptions &opts)
{
    SoloOptions o;
    o.threads = threads;
    o.scale = opts.scale;
    o.system.seed = opts.seed;
    return runSolo(app, o);
}

SoloResult
soloAtWays(const AppParams &app, unsigned ways, const BenchOptions &opts,
           unsigned threads)
{
    SoloOptions o;
    o.threads = threads;
    o.ways = ways;
    o.scale = opts.scale;
    o.system.seed = opts.seed;
    return runSolo(app, o);
}

SoloResult
soloWithPrefetch(const AppParams &app, bool prefetch_on,
                 const BenchOptions &opts)
{
    SoloOptions o;
    o.threads = 4;
    o.scale = opts.scale;
    o.system.seed = opts.seed;
    o.system.prefetch = PrefetchConfig::allEnabled(prefetch_on);
    return runSolo(app, o);
}

std::vector<double>
scalabilityCurve(const AppParams &app, const BenchOptions &opts)
{
    std::vector<double> times;
    for (unsigned n = 1; n <= 8; ++n)
        times.push_back(soloAtThreads(app, n, opts).time);
    return times;
}

std::vector<double>
llcCurve(const AppParams &app, const BenchOptions &opts, unsigned threads)
{
    std::vector<double> times;
    for (unsigned w = 1; w <= 12; ++w)
        times.push_back(soloAtWays(app, w, opts, threads).time);
    return times;
}

ScalClass
classifyScalability(const std::vector<double> &times)
{
    // Table 1's buckets, applied to the measured speedup curve:
    // low      — peak speedup below 1.6x;
    // saturated— meaningful speedup that stops growing by 8 threads;
    // high     — keeps growing to 8 threads with solid overall gain.
    const double peak_speedup = times.front() / times.back();
    double best = 0.0;
    for (const double t : times)
        best = std::max(best, times.front() / t);
    const double tail_growth =
        times[5] / times[7]; // 6 -> 8 thread improvement
    if (best < 1.6)
        return ScalClass::Low;
    if (tail_growth > 1.06 && peak_speedup >= 2.8)
        return ScalClass::High;
    return ScalClass::Saturated;
}

UtilClass
classifyUtility(const std::vector<double> &times)
{
    // Table 2's buckets from the 1..12-way curve. The paper ignores
    // the pathological 0.5 MB direct-mapped point (§3.2); on our
    // platform tiny allocations additionally pay associativity and
    // inclusion-victim costs, so classification starts at 3 ways:
    // low      — ways beyond 3 change little;
    // high     — still improving in the top third of the cache;
    // saturated— improves, then flattens.
    const double t12 = times[11];
    const double gain_3_to_12 = times[2] / t12;
    const double gain_10_to_12 = times[9] / t12;
    if (gain_3_to_12 < 1.05)
        return UtilClass::Low;
    if (gain_10_to_12 > 1.02)
        return UtilClass::High;
    return UtilClass::Saturated;
}

double
bandwidthSlowdown(const AppParams &app, const BenchOptions &opts)
{
    const SoloResult solo = soloAtThreads(app, 4, opts);
    PairOptions po;
    po.scale = opts.scale;
    po.system.seed = opts.seed;
    const PairResult pr =
        runPair(app, Catalog::byName("stream_uncached"), po);
    return pr.fgTime / solo.time;
}

double
prefetchRatio(const AppParams &app, const BenchOptions &opts)
{
    const SoloResult on = soloWithPrefetch(app, true, opts);
    const SoloResult off = soloWithPrefetch(app, false, opts);
    return on.time / off.time;
}

std::vector<AppParams>
representatives()
{
    std::vector<AppParams> reps;
    for (const auto name : Catalog::clusterRepresentatives())
        reps.push_back(Catalog::byName(name));
    return reps;
}

std::string
repLabel(std::size_t idx)
{
    return "C" + std::to_string(idx + 1);
}

} // namespace capart::bench
