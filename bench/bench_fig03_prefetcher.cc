/**
 * @file
 * Figure 3: execution time with all hardware prefetchers enabled,
 * normalized to all prefetchers disabled, for every application.
 * Ratios below 1 mean the prefetchers help; lusearch's ratio above 1
 * reproduces the paper's one pathological case.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.15,
        "Fig. 3: prefetcher sensitivity (time all-on / all-off)");

    Table t({"suite", "app", "on/off", "sensitive(measured)",
             "sensitive(paper)", "match"});
    unsigned matches = 0, total = 0, insensitive = 0;
    for (const auto &app : Catalog::all()) {
        const double ratio = prefetchRatio(app, opts);
        // "Sensitive" per the paper's reading of Fig. 3: the
        // configuration changes runtime by more than ~5 % either way.
        const bool measured = ratio < 0.95 || ratio > 1.05;
        const bool ok = measured == app.expectedPrefetchSensitive;
        matches += ok;
        ++total;
        insensitive += !measured;
        t.addRow({suiteName(app.suite), app.name, Table::num(ratio, 3),
                  measured ? "yes" : "no",
                  app.expectedPrefetchSensitive ? "yes" : "no",
                  ok ? "yes" : "NO"});
    }
    emit(opts, "Figure 3: normalized execution time, prefetchers on vs "
               "off",
         t);
    std::cout << "\nInsensitive applications: " << insensitive << "/"
              << total << " (paper: 36 of 46 nearly insensitive)\n"
              << "Agreement with the paper's sensitive set: " << matches
              << "/" << total << "\n";
    return 0;
}
