/**
 * @file
 * Ablation: offline miss-rate curves vs. measured way sweeps.
 *
 * §7's related work (RapidMRC, FlexDCP, UCP) drives partitioning from
 * miss-rate curves. This ablation builds the exact LRU MRC of each
 * representative's reference stream with the stack-distance profiler
 * and compares the capacity at which the MRC flattens against the
 * allocation at which the simulator's measured execution time
 * flattens. Agreement validates that the measured LLC sensitivity
 * really is a working-set effect; the residual gap quantifies what the
 * private levels, set conflicts, and pseudo-LRU add on top.
 */

#include <iostream>
#include <vector>

#include "analysis/mrc.hh"
#include "bench_common.hh"
#include "workload/catalog.hh"
#include "workload/generator.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.3,
        "Ablation: stack-distance MRC vs measured way sensitivity");

    const std::uint64_t sets = HierarchyConfig::sandyBridge().llc.sets();
    Table t({"app", "alloc", "MB", "mrc-miss-ratio", "measured-ms"});
    for (const auto &rep : representatives()) {
        // Profile the (single-thread) reference stream.
        const AppParams app = rep.scaled(opts.scale);
        ThreadWorkload wl(app, 0, 1, 1ull << 40, opts.seed);
        StackDistanceProfiler prof;
        std::vector<MemAccess> buf;
        while (!wl.done()) {
            buf.clear();
            const double progress =
                static_cast<double>(wl.retired()) /
                static_cast<double>(wl.totalWork());
            wl.runQuantum(100000, progress, buf);
            for (const MemAccess &m : buf) {
                if (!m.uncached)
                    prof.access(lineAddr(m.addr));
            }
        }

        for (unsigned ways = 1; ways <= 12; ++ways) {
            const std::uint64_t cap_lines = ways * sets;
            const SoloResult measured =
                soloAtWays(rep, ways, opts, /*threads=*/1);
            t.addRow({rep.name, std::to_string(ways) + "w",
                      Table::num(ways * 0.5, 1),
                      Table::num(prof.missRatio(cap_lines), 4),
                      Table::num(measured.time * 1e3, 3)});
        }
        std::cerr << rep.name << ": " << prof.accesses()
                  << " refs profiled, " << prof.uniqueLines()
                  << " unique lines\n";
    }
    emit(opts, "Ablation: exact-LRU MRC vs measured time by allocation",
         t);
    std::cout << "\nExpectation: the allocation where the MRC flattens "
                 "matches the measured curve's\nknee; the measured curve "
                 "is smoother (set conflicts, pseudo-LRU, private-level "
                 "filtering).\n";
    return 0;
}
