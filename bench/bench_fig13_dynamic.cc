/**
 * @file
 * Figure 13: background throughput of every ordered representative
 * pair under the dynamic partitioning algorithm and under an
 * unpartitioned shared LLC, both normalized to the best static
 * (biased) allocation — plus the §6.4 foreground-protection check
 * (dynamic within ~2 % of best static). Pairs fan out through
 * SweepRunner (`--jobs=N`, `--resume`).
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 13: background throughput of dynamic partitioning vs "
        "best-static");

    const auto reps = representatives();
    const unsigned policies = exec::policyBit(Policy::Shared) |
                              exec::policyBit(Policy::Biased) |
                              exec::policyBit(Policy::Dynamic);
    std::vector<exec::ExperimentSpec> specs;
    for (std::size_t i = 0; i < reps.size(); ++i)
        for (std::size_t j = 0; j < reps.size(); ++j)
            specs.push_back(exec::consolidationSpec(
                reps[i].name, reps[j].name, policies, opts.scale,
                /*perf_window=*/15e-6));

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig13_dynamic").run(specs);

    Table t({"pair", "fg", "bg", "shared/static", "dynamic/static",
             "fg: dyn-vs-static", "settled-fg-ways"});
    RunningStat shared_ratio, dyn_ratio, fg_delta;
    double dyn_best = 0.0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = 0; j < reps.size(); ++j) {
            const exec::SweepResult &r = res[i * reps.size() + j];
            const exec::PolicyOutcome &bi =
                r.policy[static_cast<int>(Policy::Biased)];
            const exec::PolicyOutcome &sh =
                r.policy[static_cast<int>(Policy::Shared)];
            const exec::PolicyOutcome &dy =
                r.policy[static_cast<int>(Policy::Dynamic)];

            const double r_sh = sh.bgThroughput / bi.bgThroughput;
            const double r_dy = dy.bgThroughput / bi.bgThroughput;
            shared_ratio.add(r_sh);
            dyn_ratio.add(r_dy);
            dyn_best = std::max(dyn_best, r_dy);
            fg_delta.add(dy.fgSlowdown - bi.fgSlowdown);
            t.addRow({repLabel(i) + "+" + repLabel(j), reps[i].name,
                      reps[j].name, Table::num(r_sh, 3),
                      Table::num(r_dy, 3),
                      Table::num(dy.fgSlowdown - bi.fgSlowdown, 3),
                      std::to_string(dy.fgWays)});
        }
    }
    t.addRow({"Average", "", "", Table::num(shared_ratio.mean(), 3),
              Table::num(dyn_ratio.mean(), 3),
              Table::num(fg_delta.mean(), 3), ""});
    emit(opts, "Figure 13: background throughput relative to the best "
               "static allocation",
         t);

    std::cout << "\nDynamic vs best-static background throughput: +"
              << Table::num((dyn_ratio.mean() - 1) * 100, 1)
              << "% average (paper 19%), best "
              << Table::num(dyn_best, 2) << "x (paper up to 2.5x)\n"
              << "Shared vs best-static: +"
              << Table::num((shared_ratio.mean() - 1) * 100, 1)
              << "% (paper 53%, but without isolation)\n"
              << "Foreground cost of dynamic vs best static: "
              << Table::num(fg_delta.mean() * 100, 1)
              << " percentage points average (paper: within 1-2%)\n";
    return 0;
}
