/**
 * @file
 * Figure 9N: N-app consolidation beyond the paper's pairwise setup.
 *
 * Each spec hosts one deterministic catalog mix (sensitive + streaming
 * + light apps, see Catalog::nAppMix) on a 16-core / 20-way machine —
 * the commodity-server shape the LFOC line of work targets — and
 * evaluates the N-app policy roster on it: shared, fair, UCP with
 * lookahead, LFOC-style clustering, and the paper's dynamic
 * Algorithm 6.2 with one foreground and N-1 background peers. Reported
 * per (mix, policy): system throughput (STP), aggregate instructions
 * per second, the LFOC unfairness metric (max/min slowdown), app 0's
 * slowdown, socket/wall energy, SLO breaches (slowdown > 1.10), and
 * remask count. `--quick` runs the single 8-app headline mix the golden
 * suite pins; the full run adds 4- and 12-app mixes over three mix
 * variants.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/partitioner.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

constexpr unsigned kCores = 16;
constexpr unsigned kLlcWays = 20;
constexpr unsigned kThreadsEach = 2;

constexpr NPolicy kRoster[] = {NPolicy::Shared, NPolicy::Fair,
                               NPolicy::Ucp, NPolicy::Lfoc,
                               NPolicy::Dynamic};

std::vector<std::string>
mixNames(std::size_t n, unsigned variant)
{
    std::vector<std::string> names;
    for (const AppParams &a : Catalog::nAppMix(n, variant))
        names.push_back(a.name);
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.04,
        "Fig. 9N: N-app mixes under shared/fair/UCP/LFOC/dynamic");

    unsigned policies = 0;
    for (const NPolicy p : kRoster)
        policies |= npolicyBit(p);

    struct MixSpec
    {
        std::size_t apps;
        unsigned variant;
    };
    std::vector<MixSpec> mixes;
    if (opts.quick) {
        mixes.push_back({8, 0});
    } else {
        for (const unsigned variant : {0u, 1u, 2u})
            for (const std::size_t n : {std::size_t{4}, std::size_t{8},
                                        std::size_t{12}})
                mixes.push_back({n, variant});
    }

    std::vector<exec::ExperimentSpec> specs;
    for (const MixSpec &m : mixes)
        specs.push_back(exec::nappSpec(mixNames(m.apps, m.variant),
                                       kCores, kLlcWays, policies,
                                       kThreadsEach, opts.scale));

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig09n_napp_policies").run(specs);

    Table t({"mix", "apps", "policy", "stp", "throughput-mips",
             "unfairness", "fg-slowdown", "socket-j", "wall-j",
             "slo-breaches", "remasks"});
    // Per-policy accumulators for the cross-mix summary.
    double stp_sum[kNumNPolicies] = {};
    double unf_sum[kNumNPolicies] = {};
    unsigned breach_sum[kNumNPolicies] = {};
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        const std::string mix_label = "m" + std::to_string(mixes[i].variant) +
                                      "x" + std::to_string(mixes[i].apps);
        for (const NPolicy p : kRoster) {
            const exec::NAppPolicyOutcome &po =
                res[i].napp[static_cast<int>(p)];
            if (!po.present)
                continue;
            stp_sum[static_cast<int>(p)] += po.stp;
            unf_sum[static_cast<int>(p)] += po.unfairness;
            breach_sum[static_cast<int>(p)] += po.sloBreaches;
            t.addRow({mix_label, std::to_string(mixes[i].apps),
                      npolicyName(p), Table::num(po.stp, 3),
                      Table::num(po.throughputIps / 1e6, 1),
                      Table::num(po.unfairness, 3),
                      Table::num(po.fgSlowdown, 3),
                      Table::num(po.socketEnergyJ, 3),
                      Table::num(po.wallEnergyJ, 3),
                      std::to_string(po.sloBreaches),
                      std::to_string(po.remasks)});
        }
    }
    emit(opts, "Figure 9N: N-app policy comparison", t);

    const double cells = static_cast<double>(mixes.size());
    std::cout << "\nPolicy summary (averages over " << mixes.size()
              << " mix(es)):\n";
    for (const NPolicy p : kRoster) {
        const int idx = static_cast<int>(p);
        std::cout << "  " << npolicyName(p) << ": avg STP "
                  << Table::num(stp_sum[idx] / cells, 3)
                  << ", avg unfairness "
                  << Table::num(unf_sum[idx] / cells, 3)
                  << ", SLO breaches " << breach_sum[idx] << "\n";
    }
    return 0;
}
