/**
 * @file
 * Ablation: dynamic-algorithm threshold sensitivity.
 *
 * §6.3 reports "the results largely insensitive to small parameter
 * changes". This ablation sweeps MPKI_THR1/2 and MPKI_THR3 around
 * their defaults on two representative pairs and reports foreground
 * slowdown and background throughput at each setting.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/co_scheduler.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08,
        "Ablation: dynamic-partitioner threshold sensitivity (§6.3)");

    const struct
    {
        const char *fg;
        const char *bg;
    } pairs[] = {{"429.mcf", "dedup"}, {"dedup", "471.omnetpp"}};

    for (const auto &p : pairs) {
        Table t({"thr1=thr2", "thr3", "fg-slowdown", "bg-throughput",
                 "settled-fg-ways", "reallocations"});
        for (const double thr12 : {0.04, 0.08, 0.16}) {
            for (const double thr3 : {0.05, 0.10, 0.20}) {
                CoScheduleOptions co;
                co.scale = opts.scale;
                co.system.seed = opts.seed;
                co.system.perfWindow = 15e-6;
                co.dynamic.detector.thr1 = thr12;
                co.dynamic.detector.thr2 = thr12;
                co.dynamic.thr3 = thr3;
                CoScheduler cs(Catalog::byName(p.fg),
                               Catalog::byName(p.bg), co);
                const ConsolidationSummary dy =
                    cs.summarize(Policy::Dynamic);
                const DynamicPartitioner *ctrl =
                    cs.lastDynamicController();
                t.addRow({Table::num(thr12, 2), Table::num(thr3, 2),
                          Table::num(dy.fgSlowdown, 3),
                          Table::num(dy.bgThroughput / 1e9, 3),
                          std::to_string(dy.fgWays),
                          std::to_string(ctrl ? ctrl->reallocations()
                                              : 0)});
            }
            std::cerr << p.fg << "+" << p.bg << " thr12=" << thr12
                      << " done\n";
        }
        emit(opts,
             std::string("Threshold sweep for ") + p.fg + " + " + p.bg,
             t);
    }
    std::cout << "\nExpectation (§6.3): foreground slowdown varies "
                 "little across the sweep.\n";
    return 0;
}
