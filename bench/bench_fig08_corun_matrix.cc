/**
 * @file
 * Figure 8: the full co-run matrix — normalized execution time of every
 * foreground application (columns in the paper) against every
 * background application (rows), with an unpartitioned shared LLC.
 * Also reports §5.1's derived observations: the sensitive set (average
 * column slowdown > 10 %), the aggressor set (average row slowdown >
 * 10 %), and the fraction of apps that barely slow down.
 *
 * The 45x45 sweep (plus 45 solo baselines) fans out through
 * SweepRunner: `--jobs=N` parallelizes it with bit-identical output,
 * `--resume` memoizes completed cells across interrupted runs.
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 8: 45x45 shared-LLC co-run slowdown matrix (use --quick "
        "for representatives only)");

    const std::vector<AppParams> apps =
        opts.quick ? representatives() : Catalog::all();
    const std::size_t n = apps.size();

    // Solo baselines (4 threads on 2 cores, §5) first, then the full
    // matrix, all as one batch so the pool never idles between phases.
    std::vector<exec::ExperimentSpec> specs;
    specs.reserve(n + n * n);
    for (std::size_t i = 0; i < n; ++i)
        specs.push_back(exec::soloSpec(apps[i].name, 4, 12, opts.scale));
    for (std::size_t fg = 0; fg < n; ++fg)
        for (std::size_t bg = 0; bg < n; ++bg)
            specs.push_back(
                exec::pairSpec(apps[fg].name, apps[bg].name, opts.scale));

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig08_corun_matrix").run(specs);

    // The matrix: slowdown[fg][bg].
    std::vector<std::vector<double>> slow(n, std::vector<double>(n, 1.0));
    for (std::size_t fg = 0; fg < n; ++fg)
        for (std::size_t bg = 0; bg < n; ++bg)
            slow[fg][bg] = res[n + fg * n + bg].time / res[fg].time;

    Table t([&] {
        std::vector<std::string> hdr = {"bg\\fg"};
        for (const auto &a : apps)
            hdr.push_back(a.name);
        return hdr;
    }());
    for (std::size_t bg = 0; bg < n; ++bg) {
        std::vector<std::string> row = {apps[bg].name};
        for (std::size_t fg = 0; fg < n; ++fg)
            row.push_back(Table::num(slow[fg][bg], 3));
        t.addRow(std::move(row));
    }
    emit(opts, "Figure 8: fg slowdown under shared LLC (row = bg, "
               "col = fg)",
         t);

    // §5.1 derived observations.
    RunningStat all;
    unsigned barely = 0;
    Table sens({"app", "avg-slowdown-as-fg", "sensitive",
                "avg-slowdown-caused-as-bg", "aggressor"});
    for (std::size_t i = 0; i < n; ++i) {
        RunningStat col, row;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            col.add(slow[i][j]); // i as foreground
            row.add(slow[j][i]); // i as background
            all.add(slow[i][j]);
        }
        if (col.mean() < 1.025)
            ++barely;
        sens.addRow({apps[i].name, Table::num(col.mean(), 3),
                     col.mean() > 1.10 ? "yes" : "no",
                     Table::num(row.mean(), 3),
                     row.mean() > 1.10 ? "yes" : "no"});
    }
    emit(opts, "Sensitive and aggressive applications (paper §5.1)",
         sens);
    std::cout << "\nAverage co-run slowdown: "
              << Table::num((all.mean() - 1.0) * 100.0, 1)
              << "% (paper: 6%)\nWorst case: "
              << Table::num((all.max() - 1.0) * 100.0, 1)
              << "% (paper: ~34.5%)\nApps slowing <2.5% on average: "
              << barely << "/" << n
              << " (paper: 22 of 45 slow down <2.5%)\n";
    return 0;
}
