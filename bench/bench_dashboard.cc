/**
 * @file
 * bench_dashboard: join a run ledger, its attribution side files, and
 * the decision journal into one self-contained HTML dashboard.
 *
 * Typical CI usage:
 *
 *     bench_fig13_dynamic --quick --ledger=runs.jsonl \
 *         --obs-sample-period=8 --attr-dir=attr
 *     bench_dashboard --ledger=runs.jsonl --out=dashboard.html
 *
 * The newest run in the ledger (or --run=ID) supplies the point
 * records; every point that carries an `attr_file` pointer has its
 * attribution document loaded and embedded. --attr=F adds side files
 * that no ledger points to (e.g. a direct System run), and
 * --attr-dir=D sweeps a whole directory. The output opens offline —
 * all data and drawing code are inline.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dashboard/dashboard.hh"
#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"
#include "report/report.hh"

namespace
{

void
usage(const char *argv0, int status)
{
    std::printf(
        "Render a self-contained HTML dashboard from capart "
        "observability output.\n\n"
        "usage: %s [--ledger=F ...] [--attr=F ...] [options]\n"
        "  --ledger=F   JSONL run ledger to read (repeatable)\n"
        "  --attr=F     attribution JSON side file to embed "
        "(repeatable)\n"
        "  --attr-dir=D embed every *.json attribution file under D\n"
        "  --run=ID     run id to show (default: newest in the "
        "ledger)\n"
        "  --bench=NAME only consider runs of this bench\n"
        "  --title=S    page title (default: bench + run id)\n"
        "  --out=F      output HTML path (default: stdout)\n",
        argv0);
    std::exit(status);
}

/** Load and parse one attribution side file; false on any failure. */
bool
loadAttrFile(const std::string &path, capart::obs::AttributionBatch *out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_dashboard: cannot read %s\n",
                     path.c_str());
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!capart::obs::parseAttributionJson(text.str(), out)) {
        std::fprintf(stderr, "bench_dashboard: %s is not an "
                             "attribution document\n", path.c_str());
        return false;
    }
    if (out->attrFile.empty())
        out->attrFile = path;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> ledgers;
    std::vector<std::string> attr_files;
    std::string attr_dir;
    std::string run_id;
    std::string bench_filter;
    std::string title;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ledger=", 0) == 0) {
            ledgers.push_back(arg.substr(9));
        } else if (arg.rfind("--attr=", 0) == 0) {
            attr_files.push_back(arg.substr(7));
        } else if (arg.rfind("--attr-dir=", 0) == 0) {
            attr_dir = arg.substr(11);
        } else if (arg.rfind("--run=", 0) == 0) {
            run_id = arg.substr(6);
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench_filter = arg.substr(8);
        } else if (arg.rfind("--title=", 0) == 0) {
            title = arg.substr(8);
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else {
            usage(argv[0], arg == "--help" ? 0 : 1);
        }
    }
    if (ledgers.empty() && attr_files.empty() && attr_dir.empty())
        usage(argv[0], 1);

    capart::dashboard::DashboardData data;

    // ---- ledger: pick the run, embed its points, follow attr_file --
    std::vector<capart::obs::RunRecord> records;
    for (const std::string &path : ledgers) {
        auto loaded = capart::obs::RunLedger::load(path);
        for (auto &rec : loaded.records) {
            if (bench_filter.empty() || rec.bench == bench_filter)
                records.push_back(std::move(rec));
        }
    }
    const std::vector<capart::report::RunGroup> groups =
        capart::report::groupRuns(records);
    const capart::report::RunGroup *group = nullptr;
    if (!run_id.empty()) {
        for (const auto &g : groups) {
            if (g.run == run_id)
                group = &g;
        }
        if (!group) {
            std::fprintf(stderr, "bench_dashboard: no run with id %s\n",
                         run_id.c_str());
            return 1;
        }
    } else if (!groups.empty()) {
        group = &groups.back(); // groups are sorted by start time
    }
    if (group) {
        data.points = group->points;
        if (title.empty())
            title = "capart " + group->bench + " — " + group->run;
        for (const capart::obs::RunRecord &p : group->points) {
            if (p.attrFile.empty())
                continue;
            capart::obs::AttributionBatch batch;
            if (loadAttrFile(p.attrFile, &batch))
                data.batches.push_back(std::move(batch));
        }
    }

    // ---- explicitly named side files, then a directory sweep --------
    if (!attr_dir.empty()) {
        std::error_code ec;
        std::vector<std::string> found;
        for (const auto &entry :
             std::filesystem::directory_iterator(attr_dir, ec)) {
            if (entry.path().extension() == ".json")
                found.push_back(entry.path().string());
        }
        if (ec) {
            std::fprintf(stderr, "bench_dashboard: cannot list %s\n",
                         attr_dir.c_str());
            return 1;
        }
        std::sort(found.begin(), found.end()); // deterministic order
        attr_files.insert(attr_files.end(), found.begin(), found.end());
    }
    for (const std::string &path : attr_files) {
        const bool already =
            std::any_of(data.batches.begin(), data.batches.end(),
                        [&](const capart::obs::AttributionBatch &b) {
                            return b.attrFile == path;
                        });
        if (already)
            continue;
        capart::obs::AttributionBatch batch;
        if (loadAttrFile(path, &batch))
            data.batches.push_back(std::move(batch));
    }

    data.title = title.empty() ? "capart dashboard" : title;

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "bench_dashboard: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        capart::dashboard::renderDashboardHtml(out, data);
        std::fprintf(stderr,
                     "bench_dashboard: wrote %s (%zu batches, %zu "
                     "samples, %zu points)\n",
                     out_path.c_str(), data.batches.size(),
                     capart::dashboard::sampleTotal(data),
                     data.points.size());
    } else {
        capart::dashboard::renderDashboardHtml(std::cout, data);
    }
    return 0;
}
