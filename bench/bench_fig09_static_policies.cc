/**
 * @file
 * Figure 9: foreground slowdown of every ordered representative pair
 * (Ci foreground + Cj continuously-running background) under the three
 * static consolidation approaches — shared, fair, and biased (§5.2).
 *
 * Each pair is one consolidation spec evaluating all three policies
 * (so cross-policy comparisons share one derived seed), fanned out
 * through SweepRunner (`--jobs=N`, `--resume`).
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 9: fg slowdown for rep pairs under shared/fair/biased");

    const auto reps = representatives();
    const unsigned policies = exec::policyBit(Policy::Shared) |
                              exec::policyBit(Policy::Fair) |
                              exec::policyBit(Policy::Biased);
    std::vector<exec::ExperimentSpec> specs;
    for (std::size_t i = 0; i < reps.size(); ++i)
        for (std::size_t j = 0; j < reps.size(); ++j)
            specs.push_back(exec::consolidationSpec(
                reps[i].name, reps[j].name, policies, opts.scale));

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig09_static_policies").run(specs);

    Table t({"pair", "fg", "bg", "shared", "fair", "biased",
             "biased-fg-ways"});
    RunningStat sh_stat, fa_stat, bi_stat;
    unsigned bi_clean = 0, sh_clean = 0, cells = 0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = 0; j < reps.size(); ++j) {
            const exec::SweepResult &r = res[i * reps.size() + j];
            const double sh =
                r.policy[static_cast<int>(Policy::Shared)].fgSlowdown;
            const double fa =
                r.policy[static_cast<int>(Policy::Fair)].fgSlowdown;
            const exec::PolicyOutcome &bi =
                r.policy[static_cast<int>(Policy::Biased)];
            sh_stat.add(sh);
            fa_stat.add(fa);
            bi_stat.add(bi.fgSlowdown);
            ++cells;
            sh_clean += sh < 1.02;
            bi_clean += bi.fgSlowdown < 1.02;
            t.addRow({repLabel(i) + "+" + repLabel(j), reps[i].name,
                      reps[j].name, Table::num(sh, 3),
                      Table::num(fa, 3), Table::num(bi.fgSlowdown, 3),
                      std::to_string(bi.fgWays)});
        }
    }
    t.addRow({"Average", "", "", Table::num(sh_stat.mean(), 3),
              Table::num(fa_stat.mean(), 3),
              Table::num(bi_stat.mean(), 3), ""});
    emit(opts, "Figure 9: foreground slowdown by policy", t);

    std::cout << "\nPolicy summary (paper values in parentheses):\n"
              << "  shared: avg "
              << Table::num((sh_stat.mean() - 1) * 100, 1) << "% (5.9%), "
              << "worst " << Table::num((sh_stat.max() - 1) * 100, 1)
              << "% (34.5%)\n"
              << "  fair:   avg "
              << Table::num((fa_stat.mean() - 1) * 100, 1) << "% (6.1%), "
              << "worst " << Table::num((fa_stat.max() - 1) * 100, 1)
              << "% (16.3%)\n"
              << "  biased: avg "
              << Table::num((bi_stat.mean() - 1) * 100, 1) << "% (2.3%), "
              << "worst " << Table::num((bi_stat.max() - 1) * 100, 1)
              << "% (7.4%)\n"
              << "  no-slowdown pairs: biased " << bi_clean << "/"
              << cells << " vs shared " << sh_clean << "/" << cells
              << " (paper: half vs a quarter)\n";
    return 0;
}
