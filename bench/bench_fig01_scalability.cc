/**
 * @file
 * Figure 1 + Table 1: normalized speedup of every application at 1-8
 * threads, and the resulting scalability classification, compared with
 * the paper's published classes.
 */

#include <iostream>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.2,
        "Fig. 1 / Table 1: thread scalability of all 45 applications");

    Table fig1({"suite", "app", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
                "s8", "class(measured)", "class(paper)", "match"});
    unsigned matches = 0, total = 0;
    for (const auto &app : Catalog::all()) {
        const std::vector<double> times = scalabilityCurve(app, opts);
        std::vector<std::string> row = {suiteName(app.suite), app.name};
        for (const double t : times)
            row.push_back(Table::num(times.front() / t, 2));
        const ScalClass measured = classifyScalability(times);
        row.push_back(scalClassName(measured));
        row.push_back(scalClassName(app.expectedScal));
        const bool ok = measured == app.expectedScal;
        row.push_back(ok ? "yes" : "NO");
        matches += ok;
        ++total;
        fig1.addRow(std::move(row));
    }
    emit(opts, "Figure 1: speedup vs threads (normalized to 1 thread)",
         fig1);
    std::cout << "\nTable 1 agreement with the paper: " << matches << "/"
              << total << " applications\n";
    return 0;
}
