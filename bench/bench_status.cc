/**
 * @file
 * bench_status: pretty-print (or live-watch) a sharded sweep's
 * `status.json`.
 *
 * Typical usage, while a sweep runs in another terminal:
 *
 *     bench_fig13_dynamic --shards=4 --status-out=status.json &
 *     bench_status --watch status.json
 *
 * The status file is atomically replaced by the supervisor (see
 * src/obs/status.hh), so reads here always see a complete document.
 * --watch re-reads every --interval seconds (default 1) and redraws;
 * it exits 0 on its own once the sweep state leaves "running". A
 * single-shot read of a missing or unparsable file exits 1; under
 * --watch the file may simply not exist yet, so missing files are
 * retried.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/status.hh"

namespace
{

void
usage(const char *argv0, int status)
{
    std::printf(
        "Pretty-print a sharded sweep's live status.json "
        "(see --status-out).\n\n"
        "usage: %s [options] STATUS_FILE\n"
        "  --watch         redraw every interval until the sweep "
        "finishes\n"
        "  --interval=S    refresh period in seconds (default 1)\n"
        "  --json          dump the (re-encoded) document instead of "
        "the table\n",
        argv0);
    std::exit(status);
}

const char *
fmtDouble(char *buf, std::size_t n, const char *fmt, double v)
{
    std::snprintf(buf, n, fmt, v);
    return buf;
}

void
printStatus(const capart::obs::SweepStatus &s)
{
    char buf[64];
    std::printf("%s  run=%s  state=%s  shards=%u\n", s.bench.c_str(),
                s.run.empty() ? "-" : s.run.c_str(), s.state.c_str(),
                s.shards);
    std::printf("points %llu/%llu done (%llu cached, %llu quarantined, "
                "%llu retries)",
                static_cast<unsigned long long>(s.pointsDone),
                static_cast<unsigned long long>(s.pointsTotal),
                static_cast<unsigned long long>(s.pointsFromCache),
                static_cast<unsigned long long>(s.pointsQuarantined),
                static_cast<unsigned long long>(s.retries));
    if (s.throughputPointsPerMin > 0.0)
        std::printf("  %s pts/min",
                    fmtDouble(buf, sizeof buf, "%.1f",
                              s.throughputPointsPerMin));
    if (s.etaS >= 0.0)
        std::printf("  eta %s s",
                    fmtDouble(buf, sizeof buf, "%.0f", s.etaS));
    if (s.pointsDone > 0)
        std::printf("  cache-hit %s",
                    fmtDouble(buf, sizeof buf, "%.0f%%",
                              100.0 * s.cacheHitRate));
    std::printf("\n\n");

    std::printf("%5s %8s %-8s %9s %7s %6s %7s %6s %7s %8s %s\n", "shard",
                "pid", "state", "done", "cached", "quar", "retries",
                "kills", "crashes", "beat(s)", "current point");
    for (const auto &sh : s.shardStates) {
        char done[32];
        std::snprintf(done, sizeof done, "%llu/%llu",
                      static_cast<unsigned long long>(sh.pointsDone),
                      static_cast<unsigned long long>(sh.pointsAssigned));
        char beat[32];
        if (sh.lastBeatAgeS >= 0.0)
            std::snprintf(beat, sizeof beat, "%.1f", sh.lastBeatAgeS);
        else
            std::snprintf(beat, sizeof beat, "-");
        std::string current;
        if (!sh.currentSpec.empty()) {
            current = sh.currentSpec;
            if (current.size() > 40)
                current = current.substr(0, 37) + "...";
            char el[32];
            std::snprintf(el, sizeof el, " (%.1fs)", sh.currentElapsedS);
            current += el;
        }
        std::printf("%5u %8ld %-8s %9s %7llu %6llu %7llu %6llu %7llu "
                    "%8s %s\n",
                    sh.shard, sh.pid, sh.state.c_str(), done,
                    static_cast<unsigned long long>(sh.pointsFromCache),
                    static_cast<unsigned long long>(sh.pointsQuarantined),
                    static_cast<unsigned long long>(sh.retries),
                    static_cast<unsigned long long>(sh.timeoutKills),
                    static_cast<unsigned long long>(sh.crashes), beat,
                    current.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool watch = false;
    bool json = false;
    double interval_s = 1.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--watch") {
            watch = true;
        } else if (arg.rfind("--interval=", 0) == 0) {
            interval_s = std::atof(arg.c_str() + 11);
            if (interval_s <= 0.0)
                interval_s = 1.0;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help") {
            usage(argv[0], 0);
        } else if (arg.rfind("--", 0) == 0) {
            usage(argv[0], 1);
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0], 1);
        }
    }
    if (path.empty())
        usage(argv[0], 1);

    for (;;) {
        capart::obs::SweepStatus s;
        const bool ok = capart::obs::readStatusFile(path, &s);
        if (!ok && !watch) {
            std::fprintf(stderr,
                         "bench_status: cannot read %s (missing or "
                         "unparsable)\n",
                         path.c_str());
            return 1;
        }
        if (ok) {
            if (watch)
                std::printf("\033[H\033[2J"); // clear screen
            if (json)
                std::printf("%s\n", capart::obs::encodeStatus(s).c_str());
            else
                printStatus(s);
            std::fflush(stdout);
            if (!watch || s.state != "running")
                return 0;
        } else if (watch) {
            std::printf("bench_status: waiting for %s ...\n",
                        path.c_str());
            std::fflush(stdout);
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            interval_s));
    }
}
