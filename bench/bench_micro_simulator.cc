/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * raw cache accesses, full-hierarchy accesses, access generation, the
 * batched quantum-replay loop (both cache engines), and an end-to-end
 * quantum. These guard the simulation throughput that makes the 45x45
 * co-run matrix tractable.
 *
 * Beyond the console numbers, `--ledger=PATH` appends one `point`
 * record per benchmark to the shared run ledger: spec = the benchmark
 * name, single metric `accesses_per_s` (items/second). The report
 * layer pairs those points across nightly runs by spec hash and its
 * regression gate (bench_report --bench=micro_simulator --gate) FAILs
 * when throughput drops by more than GateOptions::failDelta (5 %), so
 * a perf regression on the replay hot path turns the nightly red.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mem/hierarchy.hh"
#include "mem/set_assoc_cache.hh"
#include "obs/run_ledger.hh"
#include "prefetch/prefetchers.hh"
#include "sim/experiment.hh"
#include "workload/access_ring.hh"
#include "workload/catalog.hh"
#include "workload/generator.hh"

namespace
{

using namespace capart;

void
BM_LlcAccess(benchmark::State &state)
{
    CacheConfig cfg = HierarchyConfig::sandyBridge().llc;
    cfg.repl = static_cast<ReplPolicy>(state.range(0));
    SetAssocCache cache(cfg);
    Rng rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const Addr line = rng.below(1u << 18);
        sink += cache.access(line, false, 0).hit;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcAccess)
    ->Arg(static_cast<int>(ReplPolicy::LRU))
    ->Arg(static_cast<int>(ReplPolicy::BitPLRU))
    ->Arg(static_cast<int>(ReplPolicy::NRU))
    ->Arg(static_cast<int>(ReplPolicy::TreePLRU));

void
BM_HierarchyAccess(benchmark::State &state)
{
    CacheHierarchy h(HierarchyConfig::sandyBridge(), 4);
    Rng rng(2);
    std::uint64_t sink = 0;
    // Working set of state.range(0) KiB.
    const std::uint64_t lines =
        static_cast<std::uint64_t>(state.range(0)) * 1024 / kLineBytes;
    for (auto _ : state) {
        const Addr addr = rng.below(lines) * kLineBytes;
        sink += static_cast<unsigned>(
            h.access(0, 0, addr, false).servedBy);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess)->Arg(16)->Arg(512)->Arg(8192);

void
BM_GeneratorQuantum(benchmark::State &state)
{
    const AppParams &app = Catalog::byName("459.GemsFDTD");
    ThreadWorkload wl(app, 0, 1, 1ull << 40, 3);
    AccessRing ring;
    for (auto _ : state) {
        ring.clear();
        if (wl.done())
            wl.restart();
        wl.runQuantum(4000, 0.0, ring);
        benchmark::DoNotOptimize(ring.size());
    }
    state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_GeneratorQuantum);

/**
 * The quantum-loop memory hot path, isolated: generate one quantum
 * into the access ring and drain it through the hierarchy exactly as
 * System::stepHt does — demand access, prefetcher training, prefetch
 * fills — with no timing/energy bookkeeping around it. Items = memory
 * accesses replayed, so items/second is the simulator's headline
 * accesses/sec figure. Parameterized by cache engine: Fast is the
 * flat-array production path, Legacy the virtual-dispatch reference;
 * their ratio is the refactor's speedup, and the Fast number is what
 * the nightly regression gate pins.
 */
void
quantumReplay(benchmark::State &state, CacheEngine engine)
{
    HierarchyConfig hcfg = HierarchyConfig::sandyBridge();
    hcfg.l1.engine = engine;
    hcfg.l2.engine = engine;
    hcfg.llc.engine = engine;
    CacheHierarchy h(hcfg, 4);
    PrefetcherBank pf;
    const AppParams &app = Catalog::byName("459.GemsFDTD");
    ThreadWorkload wl(app, 0, 1, 1ull << 40, 3);
    AccessRing ring;
    std::vector<PrefetchRequest> pbuf;
    std::uint64_t accesses = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        ring.clear();
        if (wl.done())
            wl.restart();
        wl.runQuantum(4000, 0.0, ring);
        for (const MemAccess &acc : ring) {
            if (acc.uncached)
                continue;
            const HierarchyOutcome out =
                h.access(0, 0, acc.addr, acc.write);
            sink += static_cast<unsigned>(out.servedBy);
            pbuf.clear();
            pf.observe(acc.pc, lineAddr(acc.addr),
                       out.servedBy != ServiceLevel::L1, pbuf);
            for (const PrefetchRequest &req : pbuf) {
                sink += req.intoL1
                            ? h.prefetchIntoL1(0, 0, req.line).dramReads
                            : h.prefetchIntoL2(0, 0, req.line).dramReads;
            }
        }
        accesses += ring.size();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

void
BM_QuantumReplayFast(benchmark::State &state)
{
    quantumReplay(state, CacheEngine::Fast);
}
BENCHMARK(BM_QuantumReplayFast);

void
BM_QuantumReplayLegacy(benchmark::State &state)
{
    quantumReplay(state, CacheEngine::Legacy);
}
BENCHMARK(BM_QuantumReplayLegacy);

/**
 * Many-core replay: state.range(0) streaming cores sharing the LLC,
 * one quantum per core round-robin — the co-run matrix hot path. The
 * shared LLC thrashes, so every fill back-invalidates; this is the
 * path the inclusive-LLC core-valid directory turns from O(cores) per
 * eviction into O(holders).
 */
void
BM_QuantumReplayManyCore(benchmark::State &state)
{
    const unsigned cores = static_cast<unsigned>(state.range(0));
    CacheHierarchy h(HierarchyConfig::sandyBridge(), cores);
    std::vector<PrefetcherBank> pf(cores);
    const AppParams &app = Catalog::byName("459.GemsFDTD");
    std::vector<std::unique_ptr<ThreadWorkload>> wls;
    for (unsigned c = 0; c < cores; ++c)
        wls.push_back(std::make_unique<ThreadWorkload>(
            app, 0, 1, (1ull + c) << 40, 3 + c));
    AccessRing ring;
    std::vector<PrefetchRequest> pbuf;
    std::uint64_t accesses = 0;
    std::uint64_t sink = 0;
    unsigned turn = 0;
    for (auto _ : state) {
        const unsigned c = turn;
        turn = (turn + 1) % cores;
        ThreadWorkload &wl = *wls[c];
        ring.clear();
        if (wl.done())
            wl.restart();
        wl.runQuantum(4000, 0.0, ring);
        for (const MemAccess &acc : ring) {
            if (acc.uncached)
                continue;
            const HierarchyOutcome out =
                h.access(c, c, acc.addr, acc.write);
            sink += static_cast<unsigned>(out.servedBy);
            pbuf.clear();
            pf[c].observe(acc.pc, lineAddr(acc.addr),
                          out.servedBy != ServiceLevel::L1, pbuf);
            for (const PrefetchRequest &req : pbuf) {
                sink += req.intoL1
                            ? h.prefetchIntoL1(c, c, req.line).dramReads
                            : h.prefetchIntoL2(c, c, req.line).dramReads;
            }
        }
        accesses += ring.size();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_QuantumReplayManyCore)->Arg(4)->Arg(16);

void
BM_SoloRunEndToEnd(benchmark::State &state)
{
    const AppParams &app = Catalog::byName("ferret");
    for (auto _ : state) {
        SoloOptions o;
        o.threads = 4;
        o.scale = 0.01;
        const SoloResult r = runSolo(app, o);
        benchmark::DoNotOptimize(r.time);
    }
}
BENCHMARK(BM_SoloRunEndToEnd)->Unit(benchmark::kMillisecond);

// -------------------------------------------------- ledger emission --

/** FNV-1a 64-bit — same spec-hash scheme ExperimentSpec::hash uses,
 *  applied to the benchmark name so report pairing works unchanged. */
std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

double
unixMillisNow()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Console reporter that also captures each run's items/second. */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Item
    {
        std::string name;
        double itemsPerSecond = 0.0;
        double wallMs = 0.0;
    };

    std::vector<Item> items;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &r : reports) {
            if (r.error_occurred || r.run_type != Run::RT_Iteration)
                continue;
            const auto it = r.counters.find("items_per_second");
            if (it == r.counters.end())
                continue;
            items.push_back(Item{r.benchmark_name(),
                                 static_cast<double>(it->second),
                                 r.real_accumulated_time * 1e3});
        }
        ConsoleReporter::ReportRuns(reports);
    }
};

} // namespace

/**
 * BENCHMARK_MAIN() replacement: identical behaviour plus an optional
 * `--ledger=PATH` flag (stripped before google-benchmark sees argv)
 * that appends one throughput point per benchmark to the run ledger.
 */
int
main(int argc, char **argv)
{
    std::string ledger_path;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ledger=", 0) == 0)
            ledger_path = arg.substr(9);
        else
            passthrough.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(passthrough.size());

    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
        return 1;

    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!ledger_path.empty()) {
        obs::RunLedger ledger(ledger_path);
        if (!ledger.ok()) {
            std::fprintf(stderr,
                         "bench_micro_simulator: cannot append to %s\n",
                         ledger_path.c_str());
            return 1;
        }
        const double now_ms = unixMillisNow();
        const std::string run_id =
            "micro_simulator-" +
            std::to_string(static_cast<std::uint64_t>(now_ms));
        for (const CapturingReporter::Item &item : reporter.items) {
            obs::RunRecord rec;
            rec.kind = "point";
            rec.bench = "micro_simulator";
            rec.run = run_id;
            rec.spec = item.name;
            rec.specHash = fnv1a64(item.name);
            rec.tsMs = now_ms;
            rec.wallMs = item.wallMs;
            rec.metrics.emplace_back("accesses_per_s",
                                     item.itemsPerSecond);
            ledger.append(rec);
        }
    }
    return 0;
}
