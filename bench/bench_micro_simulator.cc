/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths:
 * raw cache accesses, full-hierarchy accesses, access generation, and
 * an end-to-end quantum. These guard the simulation throughput that
 * makes the 45x45 co-run matrix tractable.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/hierarchy.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/experiment.hh"
#include "workload/catalog.hh"
#include "workload/generator.hh"

namespace
{

using namespace capart;

void
BM_LlcAccess(benchmark::State &state)
{
    CacheConfig cfg = HierarchyConfig::sandyBridge().llc;
    cfg.repl = static_cast<ReplPolicy>(state.range(0));
    SetAssocCache cache(cfg);
    Rng rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const Addr line = rng.below(1u << 18);
        sink += cache.access(line, false, 0).hit;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcAccess)
    ->Arg(static_cast<int>(ReplPolicy::LRU))
    ->Arg(static_cast<int>(ReplPolicy::BitPLRU))
    ->Arg(static_cast<int>(ReplPolicy::NRU));

void
BM_HierarchyAccess(benchmark::State &state)
{
    CacheHierarchy h(HierarchyConfig::sandyBridge(), 4);
    Rng rng(2);
    std::uint64_t sink = 0;
    // Working set of state.range(0) KiB.
    const std::uint64_t lines =
        static_cast<std::uint64_t>(state.range(0)) * 1024 / kLineBytes;
    for (auto _ : state) {
        const Addr addr = rng.below(lines) * kLineBytes;
        sink += static_cast<unsigned>(
            h.access(0, 0, addr, false).servedBy);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess)->Arg(16)->Arg(512)->Arg(8192);

void
BM_GeneratorQuantum(benchmark::State &state)
{
    const AppParams &app = Catalog::byName("459.GemsFDTD");
    ThreadWorkload wl(app, 0, 1, 1ull << 40, 3);
    std::vector<MemAccess> buf;
    for (auto _ : state) {
        buf.clear();
        if (wl.done())
            wl.restart();
        wl.runQuantum(4000, 0.0, buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_GeneratorQuantum);

void
BM_SoloRunEndToEnd(benchmark::State &state)
{
    const AppParams &app = Catalog::byName("ferret");
    for (auto _ : state) {
        SoloOptions o;
        o.threads = 4;
        o.scale = 0.01;
        const SoloResult r = runSolo(app, o);
        benchmark::DoNotOptimize(r.time);
    }
}
BENCHMARK(BM_SoloRunEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
