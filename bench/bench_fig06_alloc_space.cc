/**
 * @file
 * Figure 6: execution time, LLC MPKI, socket energy, and wall energy
 * of every (threads x ways) resource allocation for the six cluster
 * representatives — the 96-allocation sweep of §4.
 */

#include <iostream>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08,
        "Fig. 6: time/MPKI/energy over all 96 allocations per "
        "representative");

    const unsigned thread_step = opts.quick ? 2 : 1;
    Table t({"rep", "app", "threads", "ways", "time_ms", "mpki",
             "socket_J", "wall_J"});
    const auto reps = representatives();
    for (std::size_t r = 0; r < reps.size(); ++r) {
        for (unsigned threads = 1; threads <= 8; threads += thread_step) {
            for (unsigned ways = 1; ways <= 12;
                 ways += (opts.quick ? 2 : 1)) {
                const SoloResult res =
                    soloAtWays(reps[r], ways, opts, threads);
                t.addRow({repLabel(r), reps[r].name,
                          std::to_string(threads), std::to_string(ways),
                          Table::num(res.time * 1e3, 3),
                          Table::num(res.app.mpki(), 2),
                          Table::num(res.socketEnergy, 4),
                          Table::num(res.wallEnergy, 4)});
            }
        }
        std::cerr << "swept " << reps[r].name << "\n";
    }
    emit(opts, "Figure 6: allocation-space sweep for the cluster "
               "representatives",
         t);

    std::cout << "\nRace-to-halt check: for each representative, the "
                 "minimum-energy allocation\nshould also be at (or very "
                 "near) the minimum-time allocation (§4).\n";
    return 0;
}
