/**
 * @file
 * Figure 6: execution time, LLC MPKI, socket energy, and wall energy
 * of every (threads x ways) resource allocation for the six cluster
 * representatives — the 96-allocation sweep of §4, fanned out through
 * SweepRunner (`--jobs=N`, `--resume`).
 */

#include <iostream>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08,
        "Fig. 6: time/MPKI/energy over all 96 allocations per "
        "representative");

    const unsigned thread_step = opts.quick ? 2 : 1;
    const unsigned way_step = opts.quick ? 2 : 1;
    const auto reps = representatives();

    struct Point
    {
        std::size_t rep;
        unsigned threads;
        unsigned ways;
    };
    std::vector<Point> points;
    std::vector<exec::ExperimentSpec> specs;
    for (std::size_t r = 0; r < reps.size(); ++r) {
        for (unsigned threads = 1; threads <= 8; threads += thread_step) {
            for (unsigned ways = 1; ways <= 12; ways += way_step) {
                points.push_back({r, threads, ways});
                specs.push_back(exec::soloSpec(reps[r].name, threads,
                                               ways, opts.scale));
            }
        }
    }

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig06_alloc_space").run(specs);

    Table t({"rep", "app", "threads", "ways", "time_ms", "mpki",
             "socket_J", "wall_J"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        t.addRow({repLabel(p.rep), reps[p.rep].name,
                  std::to_string(p.threads), std::to_string(p.ways),
                  Table::num(res[i].time * 1e3, 3),
                  Table::num(res[i].mpki, 2),
                  Table::num(res[i].socketEnergy, 4),
                  Table::num(res[i].wallEnergy, 4)});
    }
    emit(opts, "Figure 6: allocation-space sweep for the cluster "
               "representatives",
         t);

    std::cout << "\nRace-to-halt check: for each representative, the "
                 "minimum-energy allocation\nshould also be at (or very "
                 "near) the minimum-time allocation (§4).\n";
    return 0;
}
