/**
 * @file
 * Figure 2 + Table 2: execution time versus LLC allocation (0.5-6 MB
 * via 1-12 ways) for every application, the multi-thread-count curves
 * for the paper's three showcase applications, and the LLC-utility
 * classification with the >10-APKI ("bold") marker.
 */

#include <iostream>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    // Full-length runs by default: utility classification needs the
    // multi-MB working sets to establish reuse, which scaled-down runs
    // cannot (EXPERIMENTS.md discusses this warmup effect).
    const BenchOptions opts = parseArgs(
        argc, argv, 1.0,
        "Fig. 2 / Table 2: LLC-capacity sensitivity of all applications");

    // Fig. 2's three showcase apps at several thread counts.
    Table fig2({"app", "threads", "w1", "w2", "w3", "w4", "w5", "w6",
                "w7", "w8", "w9", "w10", "w11", "w12"});
    for (const char *name : {"swaptions", "tomcat", "471.omnetpp"}) {
        const AppParams &app = Catalog::byName(name);
        const unsigned max_threads = app.maxThreads;
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            if (threads > 1 && max_threads == 1)
                continue;
            const std::vector<double> times =
                llcCurve(app, opts, threads);
            std::vector<std::string> row = {name,
                                            std::to_string(threads)};
            for (const double t : times)
                row.push_back(Table::num(t * 1e3, 3));
            fig2.addRow(std::move(row));
        }
    }
    emit(opts,
         "Figure 2: execution time (ms) vs LLC ways for representative "
         "sensitivity classes",
         fig2);

    // Table 2 for the whole suite at 4 threads.
    Table table2({"suite", "app", "apki", ">10apki", "t(2w)/t(12w)",
                  "t(8w)/t(12w)", "class(measured)", "class(paper)",
                  "match"});
    unsigned matches = 0, total = 0;
    for (const auto &app : Catalog::all()) {
        const std::vector<double> times = llcCurve(app, opts);
        const SoloResult full = soloAtWays(app, 12, opts);
        const UtilClass measured = classifyUtility(times);
        // stream_uncached bypasses the LLC entirely; no utility class
        // is meaningful for it, so it is excluded from the agreement
        // count (the paper's table lists it only as a polluter).
        const bool counted = app.name != "stream_uncached";
        const bool ok = measured == app.expectedUtil;
        matches += ok && counted;
        total += counted;
        table2.addRow({suiteName(app.suite), app.name,
                       Table::num(full.app.apki(), 1),
                       full.app.apki() > 10.0 ? "bold" : "",
                       Table::num(times[1] / times[11], 3),
                       Table::num(times[7] / times[11], 3),
                       utilClassName(measured),
                       utilClassName(app.expectedUtil),
                       ok ? "yes" : "NO"});
    }
    emit(opts, "Table 2: LLC allocation sensitivity classes", table2);
    std::cout << "\nTable 2 agreement with the paper: " << matches << "/"
              << total << " applications\n";
    return 0;
}
