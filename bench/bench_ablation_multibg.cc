/**
 * @file
 * Ablation: multiple background applications (§5.2, §6.3).
 *
 * The paper examined one foreground with two or more copies of the
 * background and found contention only grows; and the dynamic
 * algorithm handles multiple backgrounds by treating them as peers in
 * the complement partition. This bench reproduces both: foreground
 * slowdown with 1 vs 2 background copies under shared and dynamic
 * management (2 cores fg + 1 core per background copy).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/dynamic_partitioner.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

struct Cell
{
    double fgSlowdown = 1.0;
    double bgIps = 0.0;
};

Cell
runMulti(const AppParams &fg, const AppParams &bg, unsigned bg_copies,
         bool dynamic, const BenchOptions &opts)
{
    SystemConfig cfg;
    cfg.seed = opts.seed;
    cfg.perfWindow = 15e-6;

    // Solo baseline: fg alone on its two cores.
    SoloOptions so;
    so.threads = 4;
    so.scale = opts.scale;
    so.system = cfg;
    const double solo = runSolo(fg, so).time;

    System sys(cfg);
    const AppId fg_id = sys.addAppThreads(fg.scaled(opts.scale), 0, 4);
    std::vector<AppId> bgs;
    for (unsigned c = 0; c < bg_copies; ++c) {
        // One core (2 HTs) per background copy.
        bgs.push_back(sys.addAppThreads(bg.scaled(opts.scale), 2 + c, 2,
                                        /*continuous=*/true));
    }

    DynamicPartitioner ctrl(fg_id, bgs);
    if (dynamic) {
        const SplitMasks m = splitWays(11, 12);
        sys.setWayMask(fg_id, m.fg);
        for (const AppId b : bgs)
            sys.setWayMask(b, m.bg);
        sys.setController(&ctrl);
    }
    const RunResult run = sys.run();

    Cell cell;
    cell.fgSlowdown = run.app(fg_id).completionTime / solo;
    for (const AppId b : bgs)
        cell.bgIps += run.app(b).throughputIps;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.1,
        "Ablation: one vs two background copies (§5.2), shared and "
        "dynamic");

    const struct
    {
        const char *fg;
        const char *bg;
    } pairs[] = {{"429.mcf", "dedup"},
                 {"471.omnetpp", "streamcluster"},
                 {"482.sphinx3", "xalan"},
                 {"canneal", "ferret"}};

    Table t({"fg", "bg", "policy", "slowdown(1 bg)", "slowdown(2 bg)",
             "bg-MIPS(1)", "bg-MIPS(2)"});
    for (const auto &p : pairs) {
        const AppParams &fg = Catalog::byName(p.fg);
        const AppParams &bg = Catalog::byName(p.bg);
        for (const bool dynamic : {false, true}) {
            const Cell one = runMulti(fg, bg, 1, dynamic, opts);
            const Cell two = runMulti(fg, bg, 2, dynamic, opts);
            t.addRow({p.fg, p.bg, dynamic ? "dynamic" : "shared",
                      Table::num(one.fgSlowdown, 3),
                      Table::num(two.fgSlowdown, 3),
                      Table::num(one.bgIps / 1e6, 1),
                      Table::num(two.bgIps / 1e6, 1)});
            std::cerr << p.fg << "+" << p.bg
                      << (dynamic ? " dynamic" : " shared") << " done\n";
        }
    }
    emit(opts, "Ablation: foreground impact of additional background "
               "copies",
         t);
    std::cout << "\nExpectation (§5.2): a second background copy only "
                 "adds contention; the dynamic\npolicy still protects "
                 "the foreground because the copies share one "
                 "complement partition (§6.3).\n";
    return 0;
}
