/**
 * @file
 * Figure 7: wall-energy contours over the (threads x ways) allocation
 * plane for each cluster representative, normalized to the
 * minimum-energy allocation — darker paper contours == higher ratios
 * here. Also reports each representative's energy-optimal allocation
 * and how much LLC it can yield without leaving the 2.5 % contour
 * (the "resource gap" §4 exploits for consolidation).
 */

#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08, "Fig. 7: wall-energy contours per "
                          "representative");

    const unsigned way_step = opts.quick ? 3 : 1;
    const auto reps = representatives();
    for (std::size_t r = 0; r < reps.size(); ++r) {
        // Sweep the plane.
        std::vector<std::vector<double>> wall(
            9, std::vector<double>(13,
                                   std::numeric_limits<double>::max()));
        double best = std::numeric_limits<double>::max();
        unsigned best_threads = 1, best_ways = 1;
        for (unsigned threads = 1; threads <= 8;
             threads += (opts.quick ? 2 : 1)) {
            for (unsigned ways = 1; ways <= 12; ways += way_step) {
                const SoloResult res =
                    soloAtWays(reps[r], ways, opts, threads);
                wall[threads][ways] = res.wallEnergy;
                if (res.wallEnergy < best) {
                    best = res.wallEnergy;
                    best_threads = threads;
                    best_ways = ways;
                }
            }
        }

        Table t({"threads\\ways", "1", "2", "3", "4", "5", "6", "7", "8",
                 "9", "10", "11", "12"});
        for (unsigned threads = 1; threads <= 8;
             threads += (opts.quick ? 2 : 1)) {
            std::vector<std::string> row = {std::to_string(threads)};
            for (unsigned ways = 1; ways <= 12; ++ways) {
                row.push_back(
                    wall[threads][ways] ==
                            std::numeric_limits<double>::max()
                        ? "-"
                        : Table::num(wall[threads][ways] / best, 3));
            }
            t.addRow(std::move(row));
        }
        emit(opts,
             "Figure 7 [" + repLabel(r) + " " + reps[r].name +
                 "]: wall energy / minimum",
             t);

        // The yieldable-LLC metric: smallest way count at the optimal
        // thread count whose energy is within 2.5 % of the minimum.
        unsigned min_ways = best_ways;
        for (unsigned ways = 1; ways <= best_ways; ++ways) {
            if (wall[best_threads][ways] <= best * 1.025) {
                min_ways = ways;
                break;
            }
        }
        std::cout << reps[r].name << ": energy-optimal at "
                  << best_threads << " threads / " << best_ways
                  << " ways; can yield "
                  << Table::num((12 - min_ways) * 0.5, 1)
                  << " MB of LLC within the 1.025 contour\n";
    }
    return 0;
}
