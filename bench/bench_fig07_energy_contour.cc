/**
 * @file
 * Figure 7: wall-energy contours over the (threads x ways) allocation
 * plane for each cluster representative, normalized to the
 * minimum-energy allocation — darker paper contours == higher ratios
 * here. Also reports each representative's energy-optimal allocation
 * and how much LLC it can yield without leaving the 2.5 % contour
 * (the "resource gap" §4 exploits for consolidation).
 *
 * All six planes are swept as one SweepRunner batch (`--jobs=N`,
 * `--resume`).
 */

#include <iostream>
#include <limits>
#include <vector>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08, "Fig. 7: wall-energy contours per "
                          "representative");

    const unsigned thread_step = opts.quick ? 2 : 1;
    const unsigned way_step = opts.quick ? 3 : 1;
    const auto reps = representatives();

    struct Point
    {
        std::size_t rep;
        unsigned threads;
        unsigned ways;
    };
    std::vector<Point> points;
    std::vector<exec::ExperimentSpec> specs;
    for (std::size_t r = 0; r < reps.size(); ++r)
        for (unsigned threads = 1; threads <= 8; threads += thread_step)
            for (unsigned ways = 1; ways <= 12; ways += way_step) {
                points.push_back({r, threads, ways});
                specs.push_back(exec::soloSpec(reps[r].name, threads,
                                               ways, opts.scale));
            }

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig07_energy_contour").run(specs);

    for (std::size_t r = 0; r < reps.size(); ++r) {
        // Assemble this representative's plane.
        std::vector<std::vector<double>> wall(
            9, std::vector<double>(13,
                                   std::numeric_limits<double>::max()));
        double best = std::numeric_limits<double>::max();
        unsigned best_threads = 1, best_ways = 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].rep != r)
                continue;
            wall[points[i].threads][points[i].ways] = res[i].wallEnergy;
            if (res[i].wallEnergy < best) {
                best = res[i].wallEnergy;
                best_threads = points[i].threads;
                best_ways = points[i].ways;
            }
        }

        Table t({"threads\\ways", "1", "2", "3", "4", "5", "6", "7", "8",
                 "9", "10", "11", "12"});
        for (unsigned threads = 1; threads <= 8;
             threads += thread_step) {
            std::vector<std::string> row = {std::to_string(threads)};
            for (unsigned ways = 1; ways <= 12; ++ways) {
                row.push_back(
                    wall[threads][ways] ==
                            std::numeric_limits<double>::max()
                        ? "-"
                        : Table::num(wall[threads][ways] / best, 3));
            }
            t.addRow(std::move(row));
        }
        emit(opts,
             "Figure 7 [" + repLabel(r) + " " + reps[r].name +
                 "]: wall energy / minimum",
             t);

        // The yieldable-LLC metric: smallest way count at the optimal
        // thread count whose energy is within 2.5 % of the minimum.
        unsigned min_ways = best_ways;
        for (unsigned ways = 1; ways <= best_ways; ++ways) {
            if (wall[best_threads][ways] <= best * 1.025) {
                min_ways = ways;
                break;
            }
        }
        std::cout << reps[r].name << ": energy-optimal at "
                  << best_threads << " threads / " << best_ways
                  << " ways; can yield "
                  << Table::num((12 - min_ways) * 0.5, 1)
                  << " MB of LLC within the 1.025 contour\n";
    }
    return 0;
}
