/**
 * @file
 * Figure 5 + Table 3: hierarchical single-linkage clustering of all
 * applications on the 19-feature characterization vectors (7 thread-
 * scaling + 10 LLC-size + prefetch + bandwidth), the dendrogram merge
 * sequence, the flat clusters at linkage distance 0.9, and each
 * cluster's centroid representative.
 */

#include <iostream>
#include <map>

#include "analysis/characterization.hh"
#include "analysis/clustering.hh"
#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 5 / Table 3: clustering on 19-feature characterization");

    // Build the feature vectors from fresh characterization sweeps.
    std::vector<FeatureVector> features;
    for (const auto &app : Catalog::all()) {
        AppCharacterization c;
        c.name = app.name;
        const std::vector<double> scal = scalabilityCurve(app, opts);
        for (unsigned n = 1; n < 8; ++n)
            c.threadScaling.push_back(scal[n] / scal[0]);
        const std::vector<double> llc = llcCurve(app, opts);
        for (unsigned w = 2; w <= 11; ++w)
            c.llcSensitivity.push_back(llc[w] / llc[11]);
        c.prefetchSensitivity = prefetchRatio(app, opts);
        c.bandwidthSensitivity =
            app.name == "stream_uncached"
                ? 1.0
                : bandwidthSlowdown(app, opts);
        features.push_back(toFeatureVector(c));
        std::cerr << "characterized " << app.name << "\n";
    }
    normalizeFeatures(features);

    const Dendrogram dendro = singleLinkage(features);

    Table merges({"step", "a", "b", "distance", "size"});
    for (std::size_t k = 0; k < dendro.merges.size(); ++k) {
        const Merge &m = dendro.merges[k];
        auto name = [&](std::size_t id) {
            return id < features.size() ? features[id].name
                                        : "cluster#" + std::to_string(id);
        };
        merges.addRow({std::to_string(k), name(m.a), name(m.b),
                       Table::num(m.distance, 3),
                       std::to_string(m.size)});
    }
    emit(opts, "Figure 5: single-linkage dendrogram (merge sequence)",
         merges);

    const std::vector<unsigned> labels =
        clustersAtDistance(dendro, 0.9);
    const unsigned k = numClusters(labels);

    Table clusters({"cluster", "members", "representative(centroid)"});
    for (unsigned c = 0; c < k; ++c) {
        std::string members;
        for (std::size_t i = 0; i < labels.size(); ++i) {
            if (labels[i] == c) {
                if (!members.empty())
                    members += " ";
                members += features[i].name;
            }
        }
        const std::size_t rep =
            centroidRepresentative(features, labels, c);
        clusters.addRow({std::to_string(c), members, features[rep].name});
    }
    emit(opts, "Table 3: clusters at linkage distance 0.9", clusters);
    std::cout << "\nClusters found: " << k
              << " (paper: 6 named clusters plus singletons)\n"
              << "Paper's representatives: 429.mcf 459.GemsFDTD ferret "
                 "fop dedup batik\n";
    return 0;
}
