/**
 * @file
 * Ablation: LLC capacity — the paper's explanation for why its
 * conclusions differ from earlier simulation studies (§7/§8): those
 * studies simulated 1-2 MB LLCs close to the applications' working
 * sets, so sharing looked catastrophic and partitioning looked great.
 * This ablation reruns representative co-runs with a 2 MB and the real
 * 6 MB LLC and compares the benefit partitioning brings in each world.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/static_policies.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

struct CellResult
{
    double shared = 1.0;
    double fair = 1.0;
};

CellResult
cell(const AppParams &fg, const AppParams &bg, std::uint64_t llc_bytes,
     const BenchOptions &opts)
{
    SystemConfig sys;
    sys.seed = opts.seed;
    sys.hierarchy.llc.sizeBytes = llc_bytes;

    SoloOptions so;
    so.threads = 4;
    so.scale = opts.scale;
    so.system = sys;
    const double solo = runSolo(fg, so).time;

    PairOptions shared;
    shared.scale = opts.scale;
    shared.system = sys;
    CellResult r;
    r.shared = runPair(fg, bg, shared).fgTime / solo;

    PairOptions fair = shared;
    const SplitMasks m = splitWays(6, 12);
    fair.fgMask = m.fg;
    fair.bgMask = m.bg;
    r.fair = runPair(fg, bg, fair).fgTime / solo;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08,
        "Ablation: 1.5 MB (simulation-study-sized) vs 6 MB LLC");

    const auto reps = representatives();
    Table t({"fg", "bg", "6MB shared", "6MB fair", "1.5MB shared",
             "1.5MB fair"});
    RunningStat big_sh, big_fa, small_sh, small_fa;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = 0; j < reps.size(); ++j) {
            if (i == j)
                continue;
            const CellResult big =
                cell(reps[i], reps[j], mib(6), opts);
            // 1.5 MB keeps 12 ways x a power-of-two set count, inside
            // the 1-2 MB range earlier simulation studies used.
            const CellResult small =
                cell(reps[i], reps[j], kib(1536), opts);
            big_sh.add(big.shared);
            big_fa.add(big.fair);
            small_sh.add(small.shared);
            small_fa.add(small.fair);
            t.addRow({reps[i].name, reps[j].name,
                      Table::num(big.shared, 3), Table::num(big.fair, 3),
                      Table::num(small.shared, 3),
                      Table::num(small.fair, 3)});
            std::cerr << reps[i].name << "+" << reps[j].name << " done\n";
        }
    }
    emit(opts, "Ablation: fg slowdown under shared/fair at 6 MB vs 1.5 MB",
         t);

    const double big_gain = big_sh.mean() - big_fa.mean();
    const double small_gain = small_sh.mean() - small_fa.mean();
    std::cout << "\nAvg fg slowdown, 6 MB: shared "
              << Table::num((big_sh.mean() - 1) * 100, 1) << "% fair "
              << Table::num((big_fa.mean() - 1) * 100, 1) << "%\n"
              << "Avg fg slowdown, 1.5 MB: shared "
              << Table::num((small_sh.mean() - 1) * 100, 1) << "% fair "
              << Table::num((small_fa.mean() - 1) * 100, 1) << "%\n"
              << "Partitioning benefit (shared - fair): "
              << Table::num(big_gain * 100, 1) << "pp at 6 MB vs "
              << Table::num(small_gain * 100, 1)
              << "pp at 1.5 MB (paper: small caches exaggerate the "
                 "benefit)\n";
    return 0;
}
