/**
 * @file
 * Figure 12: 429.mcf's LLC MPKI over retired instructions for static
 * allocations of 2..12 ways and for the dynamic partitioning
 * algorithm, exposing the phase transitions the dynamic policy
 * exploits (§6.1).
 */

#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hh"
#include "core/dynamic_partitioner.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

/** MPKI per perf window of a solo mcf run at a static allocation. */
std::vector<PerfWindow>
mcfWindows(unsigned ways, const BenchOptions &opts)
{
    SystemConfig cfg;
    cfg.seed = opts.seed;
    cfg.perfWindow = 20e-6;
    System sys(cfg);
    const AppParams mcf =
        Catalog::byName("429.mcf").scaled(opts.scale);
    const AppId id = sys.addAppThreads(mcf, 0, 1);
    if (ways < sys.llcWays())
        sys.setWayMask(id, WayMask::range(0, ways));
    sys.run();
    return sys.monitor(id).windows();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 1.0,
        "Fig. 12: 429.mcf MPKI phases under static and dynamic "
        "allocations");

    // Static curves: sample MPKI at 20 evenly spaced progress points.
    constexpr unsigned kSamples = 20;
    std::map<unsigned, std::vector<double>> curves;
    for (unsigned ways = 2; ways <= 12; ways += 1) {
        const std::vector<PerfWindow> windows = mcfWindows(ways, opts);
        std::vector<double> samples;
        for (unsigned s = 0; s < kSamples; ++s) {
            const std::size_t idx =
                s * windows.size() / kSamples;
            samples.push_back(windows[idx].mpki);
        }
        curves[ways] = std::move(samples);
        std::cerr << ways << " ways done\n";
    }

    // Dynamic run: mcf foreground, dedup background (any background
    // peer exercises the reallocations).
    SystemConfig cfg;
    cfg.seed = opts.seed;
    cfg.perfWindow = 20e-6;
    System sys(cfg);
    const AppId fg = sys.addAppThreads(
        Catalog::byName("429.mcf").scaled(opts.scale), 0, 1);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(opts.scale), 2, 2, true);
    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();
    const std::vector<AllocationEvent> &hist = ctrl.history();

    Table t([&] {
        std::vector<std::string> hdr = {"progress"};
        for (unsigned ways = 2; ways <= 12; ++ways)
            hdr.push_back(std::to_string(ways) + "w");
        hdr.push_back("dynamic_mpki");
        hdr.push_back("dynamic_ways");
        return hdr;
    }());
    for (unsigned s = 0; s < kSamples; ++s) {
        std::vector<std::string> row = {
            Table::num(static_cast<double>(s) / kSamples, 2)};
        for (unsigned ways = 2; ways <= 12; ++ways)
            row.push_back(Table::num(curves[ways][s], 1));
        const std::size_t hidx = s * hist.size() / kSamples;
        row.push_back(Table::num(hist[hidx].windowMpki, 1));
        row.push_back(std::to_string(hist[hidx].fgWays));
        t.addRow(std::move(row));
    }
    emit(opts, "Figure 12: 429.mcf MPKI vs progress for static "
               "allocations and the dynamic policy",
         t);

    std::cout << "\nDetected phase changes (dynamic run): "
              << ctrl.detector().phaseChanges()
              << " (paper: mcf transitions 5 times)\n"
              << "Reallocations performed: " << ctrl.reallocations()
              << "\n";
    return 0;
}
