/**
 * @file
 * Figure 11: weighted speedup of each unordered representative pair
 * running concurrently under shared / fair / biased partitioning,
 * relative to running each application sequentially on the whole
 * machine (§5.3). Pairs fan out through SweepRunner (`--jobs=N`,
 * `--resume`).
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 11: weighted speedup of consolidation vs sequential");

    const auto reps = representatives();
    const unsigned policies = exec::policyBit(Policy::Shared) |
                              exec::policyBit(Policy::Fair) |
                              exec::policyBit(Policy::Biased);
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    std::vector<exec::ExperimentSpec> specs;
    for (std::size_t i = 0; i < reps.size(); ++i)
        for (std::size_t j = i; j < reps.size(); ++j) {
            pairs.emplace_back(i, j);
            specs.push_back(exec::consolidationSpec(
                reps[i].name, reps[j].name, policies, opts.scale));
        }

    const std::vector<exec::SweepResult> res =
        makeRunner(opts, "fig11_weighted_speedup").run(specs);

    Table t({"pair", "fg", "bg", "shared", "fair", "biased"});
    RunningStat sh_stat, fa_stat, bi_stat;
    for (std::size_t k = 0; k < pairs.size(); ++k) {
        const auto [i, j] = pairs[k];
        const exec::SweepResult &r = res[k];
        const double sh =
            r.policy[static_cast<int>(Policy::Shared)].weightedSpeedup;
        const double fa =
            r.policy[static_cast<int>(Policy::Fair)].weightedSpeedup;
        const double bi =
            r.policy[static_cast<int>(Policy::Biased)].weightedSpeedup;
        sh_stat.add(sh);
        fa_stat.add(fa);
        bi_stat.add(bi);
        t.addRow({repLabel(i) + "+" + repLabel(j), reps[i].name,
                  reps[j].name, Table::num(sh, 3), Table::num(fa, 3),
                  Table::num(bi, 3)});
    }
    t.addRow({"Average", "", "", Table::num(sh_stat.mean(), 3),
              Table::num(fa_stat.mean(), 3),
              Table::num(bi_stat.mean(), 3)});
    emit(opts, "Figure 11: weighted speedup by policy", t);

    std::cout << "\nAverage consolidation speedup: shared "
              << Table::num((sh_stat.mean() - 1) * 100, 1)
              << "% (paper 54%), biased "
              << Table::num((bi_stat.mean() - 1) * 100, 1)
              << "% (paper 60%)\n";
    return 0;
}
