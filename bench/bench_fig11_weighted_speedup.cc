/**
 * @file
 * Figure 11: weighted speedup of each unordered representative pair
 * running concurrently under shared / fair / biased partitioning,
 * relative to running each application sequentially on the whole
 * machine (§5.3).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/co_scheduler.hh"
#include "stats/summary.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06,
        "Fig. 11: weighted speedup of consolidation vs sequential");

    const auto reps = representatives();
    Table t({"pair", "fg", "bg", "shared", "fair", "biased"});
    RunningStat sh_stat, fa_stat, bi_stat;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = i; j < reps.size(); ++j) {
            CoScheduleOptions co;
            co.scale = opts.scale;
            co.system.seed = opts.seed;
            CoScheduler cs(reps[i], reps[j], co);
            const double sh =
                cs.summarize(Policy::Shared).weightedSpeedup;
            const double fa = cs.summarize(Policy::Fair).weightedSpeedup;
            const double bi =
                cs.summarize(Policy::Biased).weightedSpeedup;
            sh_stat.add(sh);
            fa_stat.add(fa);
            bi_stat.add(bi);
            t.addRow({repLabel(i) + "+" + repLabel(j), reps[i].name,
                      reps[j].name, Table::num(sh, 3),
                      Table::num(fa, 3), Table::num(bi, 3)});
            std::cerr << repLabel(i) << "+" << repLabel(j) << " done\n";
        }
    }
    t.addRow({"Average", "", "", Table::num(sh_stat.mean(), 3),
              Table::num(fa_stat.mean(), 3),
              Table::num(bi_stat.mean(), 3)});
    emit(opts, "Figure 11: weighted speedup by policy", t);

    std::cout << "\nAverage consolidation speedup: shared "
              << Table::num((sh_stat.mean() - 1) * 100, 1)
              << "% (paper 54%), biased "
              << Table::num((bi_stat.mean() - 1) * 100, 1)
              << "% (paper 60%)\n";
    return 0;
}
