/**
 * @file
 * Ablation: replacement policy and LLC indexing function.
 *
 * §3.2 attributes the absence of sharp working-set knees on real
 * hardware to pseudo-LRU replacement and randomized LLC indexing
 * (among other effects). This ablation reruns the LLC-sensitivity
 * sweep for a knee-prone application under exact LRU / bit-PLRU / NRU
 * / random replacement, with modulo and hashed indexing, to show how
 * much each mechanism smooths the curve.
 */

#include <iostream>

#include "bench_common.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

std::vector<double>
curveWith(const AppParams &app, ReplPolicy repl, IndexFn index,
          const BenchOptions &opts)
{
    std::vector<double> times;
    for (unsigned w = 1; w <= 12; ++w) {
        SoloOptions o;
        o.threads = 4;
        o.ways = w;
        o.scale = opts.scale;
        o.system.seed = opts.seed;
        o.system.hierarchy.llc.repl = repl;
        o.system.hierarchy.llc.index = index;
        times.push_back(runSolo(app, o).time);
    }
    return times;
}

const char *
replName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "LRU";
      case ReplPolicy::BitPLRU:
        return "BitPLRU";
      case ReplPolicy::NRU:
        return "NRU";
      case ReplPolicy::Random:
        return "Random";
      case ReplPolicy::TreePLRU:
        return "TreePLRU";
    }
    return "?";
}

/** Largest single-step improvement in the curve — the "knee" metric. */
double
kneeSharpness(const std::vector<double> &times)
{
    double sharpest = 0.0;
    for (std::size_t i = 2; i < times.size(); ++i)
        sharpest = std::max(sharpest, times[i - 1] / times[i] - 1.0);
    return sharpest;
}

} // namespace

int
main(int argc, char **argv)
{
    // Full length: the saturated working sets must warm up for their
    // knees to exist at all.
    const BenchOptions opts = parseArgs(
        argc, argv, 1.0,
        "Ablation: replacement policy / indexing vs working-set knees");

    for (const char *name : {"tomcat", "482.sphinx3"}) {
        const AppParams &app = Catalog::byName(name);
        Table t({"repl", "index", "w1", "w2", "w3", "w4", "w5", "w6",
                 "w7", "w8", "w9", "w10", "w11", "w12",
                 "knee-sharpness"});
        for (const ReplPolicy repl :
             {ReplPolicy::LRU, ReplPolicy::BitPLRU,
              ReplPolicy::TreePLRU, ReplPolicy::NRU,
              ReplPolicy::Random}) {
            for (const IndexFn index :
                 {IndexFn::Modulo, IndexFn::Hashed}) {
                const std::vector<double> times =
                    curveWith(app, repl, index, opts);
                std::vector<std::string> row = {
                    replName(repl),
                    index == IndexFn::Hashed ? "hashed" : "modulo"};
                for (const double x : times)
                    row.push_back(Table::num(x / times.back(), 3));
                row.push_back(Table::num(kneeSharpness(times), 3));
                t.addRow(std::move(row));
            }
        }
        emit(opts,
             std::string("Ablation [") + name +
                 "]: normalized time vs ways by replacement/indexing",
             t);
    }
    std::cout << "\nReading (§3.2): the paper attributes the missing "
                 "knees on real hardware to\npseudo-LRU, hashed "
                 "indexing, prefetchers, and multi-threaded sharing "
                 "combined.\nHere the knee-sharpness column quantifies "
                 "each mechanism's contribution for a\nrandom-reuse and "
                 "a mixed-pattern application; hashed indexing also "
                 "shows its\ncost at tiny allocations (conflicts spread "
                 "across all sets).\n";
    return 0;
}
