/**
 * @file
 * bench_report: aggregate run ledgers into the BENCH_capart.json time
 * series and a markdown regression report.
 *
 * Typical CI usage:
 *
 *     bench_fig13_dynamic --quick --ledger=runs.jsonl
 *     bench_report --ledger=runs.jsonl --json-out=BENCH_capart.json \
 *                  --md-out=report.md --gate
 *
 * With two or more runs in the ledger the oldest (or --baseline-run)
 * is compared against the newest (or --current-run): points are
 * paired by spec hash, every shared metric gets a delta, a sign test,
 * and a pass/warn/fail verdict, and --gate turns an overall FAIL into
 * a nonzero exit for CI. Without --gate the report is advisory and
 * the exit status is always 0.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/run_ledger.hh"
#include "obs/status.hh"
#include "report/report.hh"

namespace
{

void
usage(const char *argv0, int status)
{
    std::printf(
        "Aggregate capart run ledgers into a benchmark time series and "
        "regression report.\n\n"
        "usage: %s --ledger=F [--ledger=F ...] [options]\n"
        "  --ledger=F        JSONL run ledger to read (repeatable)\n"
        "  --bench=NAME      only consider runs of this bench\n"
        "  --baseline-run=ID baseline run id (default: oldest run)\n"
        "  --current-run=ID  current run id (default: newest run)\n"
        "  --status=F        embed a sweep status.json snapshot "
        "(--status-out)\n"
        "  --json-out=F      write the BENCH_capart.json time series\n"
        "  --md-out=F        write the markdown report (default: stdout)\n"
        "  --warn-delta=X    worse-direction mean delta that warns "
        "(default 0.02)\n"
        "  --fail-delta=X    worse-direction mean delta that fails "
        "(default 0.05)\n"
        "  --alpha=X         sign-test significance for FAIL "
        "(default 0.05)\n"
        "  --gate            exit 1 when the overall verdict is FAIL\n",
        argv0);
    std::exit(status);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> ledgers;
    std::string bench_filter;
    std::string baseline_id;
    std::string current_id;
    std::string json_out;
    std::string md_out;
    std::string status_path;
    capart::report::GateOptions gate;
    bool gating = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--ledger=", 0) == 0) {
            ledgers.push_back(arg.substr(9));
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench_filter = arg.substr(8);
        } else if (arg.rfind("--baseline-run=", 0) == 0) {
            baseline_id = arg.substr(15);
        } else if (arg.rfind("--current-run=", 0) == 0) {
            current_id = arg.substr(14);
        } else if (arg.rfind("--json-out=", 0) == 0) {
            json_out = arg.substr(11);
        } else if (arg.rfind("--md-out=", 0) == 0) {
            md_out = arg.substr(9);
        } else if (arg.rfind("--status=", 0) == 0) {
            status_path = arg.substr(9);
        } else if (arg.rfind("--warn-delta=", 0) == 0) {
            gate.warnDelta = std::atof(arg.c_str() + 13);
        } else if (arg.rfind("--fail-delta=", 0) == 0) {
            gate.failDelta = std::atof(arg.c_str() + 13);
        } else if (arg.rfind("--alpha=", 0) == 0) {
            gate.alpha = std::atof(arg.c_str() + 8);
        } else if (arg == "--gate") {
            gating = true;
        } else if (arg == "--advisory") {
            gating = false;
        } else {
            usage(argv[0], arg == "--help" ? 0 : 1);
        }
    }
    if (ledgers.empty())
        usage(argv[0], 1);

    std::vector<capart::obs::RunRecord> records;
    std::uint64_t skipped = 0;
    for (const std::string &path : ledgers) {
        auto loaded = capart::obs::RunLedger::load(path);
        skipped += loaded.skipped;
        for (auto &rec : loaded.records) {
            if (bench_filter.empty() || rec.bench == bench_filter)
                records.push_back(std::move(rec));
        }
    }
    if (skipped > 0) {
        std::fprintf(stderr,
                     "bench_report: skipped %llu unparsable ledger "
                     "line(s)\n",
                     static_cast<unsigned long long>(skipped));
    }

    const std::vector<capart::report::RunGroup> groups =
        capart::report::groupRuns(records);

    const auto find_group =
        [&](const std::string &id) -> const capart::report::RunGroup * {
        for (const auto &g : groups) {
            if (g.run == id)
                return &g;
        }
        std::fprintf(stderr, "bench_report: no run with id %s\n",
                     id.c_str());
        std::exit(1);
    };

    const capart::report::RunGroup *baseline = nullptr;
    const capart::report::RunGroup *current = nullptr;
    if (!baseline_id.empty())
        baseline = find_group(baseline_id);
    else if (groups.size() >= 2)
        baseline = &groups.front();
    if (!current_id.empty())
        current = find_group(current_id);
    else if (groups.size() >= 2)
        current = &groups.back();

    capart::report::RunComparison cmp;
    const bool have_cmp =
        baseline && current && baseline->run != current->run;
    if (have_cmp)
        cmp = capart::report::compareRuns(*baseline, *current, gate);

    if (!json_out.empty()) {
        std::ofstream out(json_out);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         json_out.c_str());
            return 1;
        }
        capart::report::writeBenchJson(out, groups);
    }

    capart::obs::SweepStatus status;
    bool have_status = false;
    if (!status_path.empty()) {
        have_status = capart::obs::readStatusFile(status_path, &status);
        if (!have_status)
            std::fprintf(stderr,
                         "bench_report: cannot read status file %s; "
                         "section omitted\n",
                         status_path.c_str());
    }

    const auto write_md = [&](std::ostream &out) {
        capart::report::writeMarkdown(out, groups,
                                      have_cmp ? &cmp : nullptr, gate);
        if (have_status)
            capart::report::writeStatusMarkdown(out, status);
    };
    if (!md_out.empty()) {
        std::ofstream out(md_out);
        if (!out) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         md_out.c_str());
            return 1;
        }
        write_md(out);
    } else {
        write_md(std::cout);
    }

    if (have_cmp) {
        std::fprintf(stderr, "bench_report: verdict %s (%s vs %s)\n",
                     capart::report::verdictName(cmp.verdict),
                     baseline->run.c_str(), current->run.c_str());
        if (gating && cmp.verdict == capart::report::Verdict::Fail)
            return 1;
    }
    return 0;
}
