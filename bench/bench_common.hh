/**
 * @file
 * Shared infrastructure for the experiment binaries in bench/.
 *
 * Each binary regenerates one table or figure of the paper (see
 * DESIGN.md's per-experiment index). They share command-line handling
 * (--scale, --csv, --quick), the characterization sweeps of §3, and
 * the representative-pair enumeration of §5.
 */

#ifndef CAPART_BENCH_BENCH_COMMON_HH
#define CAPART_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "exec/sweep_runner.hh"
#include "sim/experiment.hh"
#include "stats/table.hh"
#include "workload/app_params.hh"

namespace capart::bench
{

/** Common command-line options for experiment binaries. */
struct BenchOptions
{
    /** Instruction-scale factor applied to every application. */
    double scale = 0.2;
    /** Emit CSV instead of aligned text. */
    bool csv = false;
    /** Cheaper settings (fewer points / smaller scale). */
    bool quick = false;
    /** Random seed for the platform. */
    std::uint64_t seed = 12345;
    /** Sweep worker threads (--jobs=N; 0 = one per host core). */
    unsigned jobs = 1;
    /** Memoize sweep points on disk and skip completed ones. */
    bool resume = false;
    /** Cache directory for --resume (default .capart-cache/). */
    std::string cacheDir;
    /** Write the obs metrics registry here as JSON on exit ("" = off). */
    std::string metricsOut;
    /** Write a Chrome trace_event JSON file here on exit ("" = off). */
    std::string traceOut;
    /** Append run-ledger records (JSONL) to this file ("" = off). */
    std::string ledgerOut;
    /** Structured JSONL log sink ("" = off, "-" = stderr). */
    std::string logOut;
    /** Attribution sampling period in quanta (0 = off). */
    std::uint64_t obsSamplePeriod = 0;
    /** Directory for per-point attribution side files ("" = off). */
    std::string attrDir;
    /** Render the HTML dashboard here on exit ("" = off). */
    std::string dashboardOut;
    /** Process-isolated shard workers (--shards=N / --isolation=process;
     *  0-1 = in-process thread pool). See exec/shard_supervisor.hh. */
    unsigned shards = 0;
    /** >= 0: this process is shard worker k (internal; the supervisor
     *  passes it when re-executing the binary). */
    int shardWorker = -1;
    /** Directory for shard ledger segments / results / logs
     *  (default `<cacheDir>/shards`). */
    std::string ledgerDir;
    /** Seconds a shard may go without completing a point before it is
     *  presumed hung and killed (--point-timeout=S). 0 — the default —
     *  disables: liveness ticks only at point boundaries, so hang
     *  detection is opt-in for sweeps whose slowest point is bounded. */
    double pointTimeoutS = 0.0;
    /** Retries a failing point gets before quarantine. */
    unsigned maxRetries = 2;
    /** Live sweep status.json path, atomically refreshed by the shard
     *  supervisor while a --shards sweep runs ("" = off); watch it
     *  with bench_status. See src/obs/status.hh. */
    std::string statusOut;
    /** Prometheus text exposition file, refreshed on the same cadence
     *  ("" = off). */
    std::string promOut;
};

/**
 * Parse --scale=X, --csv, --quick, --seed=N, --jobs=N, --resume,
 * --cache-dir=D, --metrics-out=F, --trace-out=F, --ledger=F,
 * --log-out=F, --log-level=L, --obs-sample-period=N, --attr-dir=D,
 * --dashboard-out=F; prints usage and exits on --help or unknown
 * arguments. @p default_scale seeds opts.scale. Passing
 * --metrics-out, --trace-out, --ledger, --obs-sample-period,
 * --attr-dir, or --dashboard-out enables the observability layer for
 * the run and registers an atexit hook that writes the file(s);
 * stdout (the table/CSV) is never touched, so golden outputs stay
 * byte-identical. --ledger also stamps a run id
 * (`<bench>-<seed>-<epoch ms>`) shared by every record of the
 * invocation and appends a final `bench` record at exit.
 * --obs-sample-period=N arms per-owner attribution sampling every N
 * quanta; --attr-dir=D makes sweep runners write one attribution side
 * file per computed point under D (created if missing) and ledger the
 * partitioner's decisions; --dashboard-out=F renders the
 * self-contained HTML dashboard over everything collected at exit.
 * --log-out opens the process-wide structured JSONL log (see
 * common/logging.hh).
 *
 * Robustness flags: --shards=N (or --isolation=process) runs sweeps
 * process-isolated — N supervised worker processes, per-point
 * timeouts (--point-timeout=S), bounded retries (--max-retries=N),
 * quarantine, and a crash-safe ledger merge from segment files under
 * --ledger-dir=D (see exec/shard_supervisor.hh). With --resume the
 * supervisor keeps existing segments and fast-forwards past finished
 * points, so a killed sweep continues where it stopped.
 *
 * Sharded export convention: a shard worker (--shard-worker=k) never
 * writes the parent's side files. Its --metrics-out, --trace-out, and
 * --log-out paths are rewritten to `<path>.shard-<k>`, its dashboard
 * and ledger exports are disabled (the supervisor owns both), and the
 * supervisor collects the per-shard files afterwards: worker traces
 * are stitched with the supervisor's own into one --trace-out timeline
 * (see src/obs/trace_stitch.hh) and worker counters are folded into
 * the --prom-out exposition. --status-out=F keeps a live, atomically
 * replaced status.json fresh while the sweep runs (per-shard pids,
 * progress, retries, quarantines, heartbeat ages; sweep throughput /
 * ETA / cache-hit rate — watch it with `bench_status --watch F`), and
 * --prom-out=F a Prometheus text exposition on the same cadence. Both
 * are supervisor-side: without --shards > 1 they write nothing.
 *
 * parseArgs also arms SIGTERM/SIGINT handling: the signals are blocked
 * process-wide and consumed by a dedicated watcher thread (sigwait),
 * so shutdown always runs in normal thread context — an interrupted
 * run flushes its ledger, metrics, and trace through the normal atexit
 * exporters before exiting 128+signal (a second signal aborts
 * immediately). Shard supervisors and workers instead observe the
 * signal cooperatively at the next point boundary.
 */
BenchOptions parseArgs(int argc, char **argv, double default_scale,
                       const char *description);

/** The --ledger run id of this invocation ("" without --ledger). */
const std::string &runId();

/**
 * A SweepRunner configured from @p opts: seeded with opts.seed, with
 * opts.jobs workers, progress ticks on stderr, and — when opts.resume
 * is set — an on-disk memoization cache at
 * `<cacheDir>/<bench_name>.cache` (the directory is created).
 */
exec::SweepRunner makeRunner(const BenchOptions &opts,
                             const std::string &bench_name);

/** Print @p table as text or CSV per @p opts, preceded by a title. */
void emit(const BenchOptions &opts, const std::string &title,
          const Table &table);

/** Solo execution time with @p threads hyperthreads, full LLC. */
SoloResult soloAtThreads(const AppParams &app, unsigned threads,
                         const BenchOptions &opts);

/** Solo execution time at 4 threads with a restricted way allocation. */
SoloResult soloAtWays(const AppParams &app, unsigned ways,
                      const BenchOptions &opts, unsigned threads = 4);

/** Solo run with a specific prefetcher configuration. */
SoloResult soloWithPrefetch(const AppParams &app, bool prefetch_on,
                            const BenchOptions &opts);

/** §3.1 sweep: execution times at 1..8 threads. */
std::vector<double> scalabilityCurve(const AppParams &app,
                                     const BenchOptions &opts);

/** §3.2 sweep: execution times at 1..12 ways (4 threads). */
std::vector<double> llcCurve(const AppParams &app,
                             const BenchOptions &opts,
                             unsigned threads = 4);

/** Classify a 1..8-thread time curve into Table 1's classes. */
ScalClass classifyScalability(const std::vector<double> &times);

/** Classify a 1..12-way time curve into Table 2's classes. */
UtilClass classifyUtility(const std::vector<double> &times);

/** Fig. 4 measurement: slowdown when co-run with stream_uncached. */
double bandwidthSlowdown(const AppParams &app, const BenchOptions &opts);

/** Fig. 3 measurement: time(all prefetchers on) / time(all off). */
double prefetchRatio(const AppParams &app, const BenchOptions &opts);

/** The six Table 3 cluster representatives, in order C1..C6. */
std::vector<AppParams> representatives();

/** Short label Ck for representative index k (0-based). */
std::string repLabel(std::size_t idx);

} // namespace capart::bench

#endif // CAPART_BENCH_BENCH_COMMON_HH
