/**
 * @file
 * Ablation: chaos bench for the hardened dynamic partitioner.
 *
 * The paper's prototype assumes clean telemetry and an infallible
 * remasking path. This ablation injects the faults a production
 * deployment sees — corrupted/dropped/stale counter windows and failed
 * or delayed schemata writes — at increasing rates, and reports how far
 * the foreground's protection degrades relative to the fault-free
 * dynamic run. Acceptance: at 5% corruption + 5% remask failure the
 * foreground slowdown stays within 3 percentage points of fault-free.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/dynamic_partitioner.hh"
#include "fault/fault_injector.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

namespace
{

struct ChaosResult
{
    double fgSlowdown = 0.0;
    double bgThroughput = 0.0;
    unsigned fgWays = 0;
    std::uint64_t rejected = 0;
    std::uint64_t remaskFailures = 0;
    std::uint64_t fallbacks = 0;
    FaultStats faults;
};

ChaosResult
runChaos(const AppParams &fg, const AppParams &bg, double fault_rate,
         const BenchOptions &opts, Seconds solo_time)
{
    PairOptions pair;
    pair.scale = opts.scale;
    pair.system.seed = opts.seed;
    pair.system.perfWindow = 15e-6;

    FaultPlan plan;
    plan.windowDropRate = fault_rate;
    plan.counterCorruptRate = fault_rate;
    plan.nanRate = fault_rate / 2;
    plan.staleRate = fault_rate;
    plan.remaskFailRate = fault_rate;
    plan.remaskDelayRate = fault_rate / 2;
    FaultInjector inj(plan, opts.seed);
    FaultyRemasker remasker(inj);

    DynamicPartitioner ctrl(0, {1}, DynamicPartitionerConfig{},
                            &remasker);
    pair.controller = &ctrl;
    pair.prepare = [&inj, fault_rate](System &sys, AppId, AppId) {
        if (fault_rate > 0.0)
            inj.attach(sys);
    };

    const PairResult r = runPair(fg, bg, pair);

    ChaosResult out;
    out.fgSlowdown = r.fgTime / solo_time;
    out.bgThroughput = r.bgThroughput;
    out.fgWays = ctrl.fgWays();
    out.rejected = ctrl.rejectedSamples();
    out.remaskFailures = ctrl.remaskFailures();
    out.fallbacks = countHealthEvents(ctrl.healthLog(),
                                      HealthEventKind::FallbackEntered);
    out.faults = inj.stats();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.08,
        "Ablation: dynamic partitioning under injected telemetry and "
        "control-plane faults");

    const struct
    {
        const char *fg;
        const char *bg;
    } pairs[] = {{"429.mcf", "dedup"}, {"dedup", "471.omnetpp"}};

    const double rates[] = {0.0, 0.02, 0.05, 0.10};

    for (const auto &p : pairs) {
        const AppParams fg = Catalog::byName(p.fg);
        const AppParams bg = Catalog::byName(p.bg);

        SoloOptions solo;
        solo.scale = opts.scale;
        solo.system.seed = opts.seed;
        solo.system.perfWindow = 15e-6;
        const Seconds solo_time = runSolo(fg, solo).time;

        Table t({"fault-rate", "fg-slowdown", "bg-throughput",
                 "settled-fg-ways", "rejected", "remask-fails",
                 "fallbacks", "inj-drop", "inj-corrupt", "inj-stale"});
        double clean_slowdown = 0.0;
        for (const double rate : rates) {
            const ChaosResult r = runChaos(fg, bg, rate, opts, solo_time);
            if (rate == 0.0)
                clean_slowdown = r.fgSlowdown;
            t.addRow({Table::num(rate, 2), Table::num(r.fgSlowdown, 3),
                      Table::num(r.bgThroughput / 1e9, 3),
                      std::to_string(r.fgWays),
                      std::to_string(r.rejected),
                      std::to_string(r.remaskFailures),
                      std::to_string(r.fallbacks),
                      std::to_string(r.faults.windowsDropped),
                      std::to_string(r.faults.windowsCorrupted),
                      std::to_string(r.faults.windowsStale)});
            std::cerr << p.fg << "+" << p.bg << " rate=" << rate
                      << " fg-slowdown=" << r.fgSlowdown << " (clean="
                      << clean_slowdown << ")\n";
        }
        emit(opts,
             std::string("Fault ablation for ") + p.fg + " + " + p.bg,
             t);
    }
    std::cout << "\nExpectation: the hardened controller holds the "
                 "foreground within ~3 percentage points of the "
                 "fault-free slowdown up to 5% fault rates, and the "
                 "watchdog keeps fallbacks rare.\n";
    return 0;
}
