/**
 * @file
 * Figure 4: increase in execution time when co-running with the
 * stream_uncached bandwidth hog, for every application.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 1.0,
        "Fig. 4: slowdown next to the stream_uncached bandwidth hog");

    Table t({"suite", "app", "slowdown", "sensitive(measured)",
             "sensitive(paper)", "match"});
    unsigned matches = 0, total = 0;
    RunningStat sens_stat;
    for (const auto &app : Catalog::all()) {
        if (app.name == "stream_uncached")
            continue; // the hog itself is the background
        const double slow = bandwidthSlowdown(app, opts);
        // The figure's "heavily affected" bar: many latency-exposed
        // apps sit at 1.1-1.3 next to the hog on real hardware too;
        // the paper's named sensitive set is the >=1.3 population.
        const bool measured = slow > 1.30;
        const bool ok = measured == app.expectedBandwidthSensitive;
        matches += ok;
        ++total;
        if (measured)
            sens_stat.add(slow);
        t.addRow({suiteName(app.suite), app.name, Table::num(slow, 3),
                  measured ? "yes" : "no",
                  app.expectedBandwidthSensitive ? "yes" : "no",
                  ok ? "yes" : "NO"});
    }
    emit(opts, "Figure 4: execution-time increase with the bandwidth hog",
         t);
    std::cout << "\nAgreement with the paper's sensitive set: " << matches
              << "/" << total << "\n";
    if (sens_stat.count()) {
        std::cout << "Mean slowdown of sensitive apps: "
                  << Table::num(sens_stat.mean(), 2) << "x (max "
                  << Table::num(sens_stat.max(), 2)
                  << "x; paper shows up to 3.8x)\n";
    }
    return 0;
}
