/**
 * @file
 * The paper's headline table (§1/§8): average energy improvement,
 * average throughput improvement, and average/worst-case foreground
 * slowdown for consolidation with shared, fair, biased, and dynamic
 * LLC management, over the ordered representative pairs.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "core/co_scheduler.hh"
#include "stats/summary.hh"

using namespace capart;
using namespace capart::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseArgs(
        argc, argv, 0.06, "Headline summary: §1's comparison table");

    const auto reps = representatives();
    struct PolicyAgg
    {
        RunningStat energy, speedup, slowdown;
    };
    std::map<Policy, PolicyAgg> agg;
    const Policy policies[] = {Policy::Shared, Policy::Fair,
                               Policy::Biased, Policy::Dynamic};

    for (std::size_t i = 0; i < reps.size(); ++i) {
        for (std::size_t j = 0; j < reps.size(); ++j) {
            CoScheduleOptions co;
            co.scale = opts.scale;
            co.system.seed = opts.seed;
            co.system.perfWindow = 15e-6;
            CoScheduler cs(reps[i], reps[j], co);
            for (const Policy p : policies) {
                const ConsolidationSummary s = cs.summarize(p);
                agg[p].energy.add(s.energyVsSequential);
                agg[p].speedup.add(s.weightedSpeedup);
                agg[p].slowdown.add(s.fgSlowdown);
            }
            std::cerr << repLabel(i) << "+" << repLabel(j) << " done\n";
        }
    }

    Table t({"policy", "energy-improvement", "throughput-improvement",
             "fg-slowdown-avg", "fg-slowdown-worst"});
    for (const Policy p : policies) {
        const PolicyAgg &a = agg[p];
        t.addRow({policyName(p),
                  Table::num((1 - a.energy.mean()) * 100, 1) + "%",
                  Table::num((a.speedup.mean() - 1) * 100, 1) + "%",
                  Table::num((a.slowdown.mean() - 1) * 100, 1) + "%",
                  Table::num((a.slowdown.max() - 1) * 100, 1) + "%"});
    }
    emit(opts, "Headline comparison (paper: shared 10%/54%/6%/34.5%, "
               "biased 12%/60%/2.3%/7.4%)",
         t);
    return 0;
}
